// Package arenaalias flags code paths that let totem delivery-arena
// memory escape the delivery callback without a copy.
//
// Since PR 3 the receive path is zero-copy: one datagram is decoded into
// one arena, totem.Delivery.Payload sub-slices it, and
// replication.DecodeHeader returns a HeaderView whose Payload aliases it
// in turn. Everything downstream of the event-loop callback therefore
// holds borrowed memory. Retaining it — storing it into a long-lived
// structure, sending it to another goroutine, capturing it in a spawned
// closure — pins the whole datagram's arena today and becomes a silent
// use-after-reuse the day the arenas are pooled. The only safe way to
// keep delivery bytes is an explicit copy: append([]byte(nil), b...),
// or a string conversion.
//
// The analyzer runs a per-function taint pass. Any expression whose type
// is an arena type (totem.Delivery, totem.Event, replication.HeaderView,
// replication.Message, or any in-package type declared with a
// "gwlint:arena" directive comment) is borrowed; taint flows through
// reference-carrying selectors, sub-slices, locals, composite literals
// and address-taking, and stops at copies — appending borrowed bytes
// copies the bytes, so append([]byte(nil), b...) comes out clean without
// special-casing. A finding is reported when a borrowed value is
//
//   - assigned to anything longer-lived than a local variable (a struct
//     field, a map or slice element, a dereferenced pointer, a package
//     variable),
//   - sent on a channel whose element type is not a declared carrier
//     (replication's task and pendingResult stay on the delivery cycle
//     by construction; others opt in with "gwlint:arena-carrier"),
//   - captured by a function launched with go, or
//   - returned with a type that is not itself an arena or carrier type
//     (returning a HeaderView hands the borrow to the caller explicitly;
//     returning a bare []byte hides it).
//
// Passing a borrowed value as a call argument is allowed — the callee is
// analyzed on its own and is responsible for what it retains.
package arenaalias

import (
	"go/ast"
	"go/token"
	"go/types"

	"eternalgw/internal/analysis"
)

// defaultArena names the types whose values alias the delivery arena,
// wherever they appear. In-package code can extend the set with a
// "gwlint:arena" directive on the type declaration (directives are
// comments, so they are invisible across package boundaries — which is
// why the cross-package defaults are spelled out here).
var defaultArena = map[string]bool{
	"eternalgw/internal/totem.Delivery":         true,
	"eternalgw/internal/totem.Event":            true,
	"eternalgw/internal/replication.HeaderView": true,
	"eternalgw/internal/replication.Message":    true,
}

// defaultCarrier maps the types allowed to carry borrowed memory
// through channels, queues and returns to the set of their fields that
// actually hold the borrow: task.msg/task.raw and pendingResult.raw
// alias the arena and stay tainted when selected; every other field
// (pendingResult.rep is a decoded copy) is clean. Their consumers
// decode or copy immediately on receipt by construction, which the
// replication package's own tests and this analyzer's pass over that
// package keep honest. A nil field set — what an in-package
// "gwlint:arena-carrier" directive declares — means every
// reference-carrying field is treated as a borrow, the conservative
// default.
var defaultCarrier = map[string]map[string]bool{
	"eternalgw/internal/replication.task":          {"msg": true, "raw": true},
	"eternalgw/internal/replication.pendingResult": {"raw": true},
}

var Analyzer = &analysis.Analyzer{
	Name: "arenaalias",
	Doc:  "flags delivery-arena memory escaping the delivery callback without a copy",
	Run:  run,
}

type checker struct {
	pass  *analysis.Pass
	arena map[string]bool // type keys whose values are always borrowed
	// carrier maps carrier type keys to their borrow-holding fields;
	// a nil set means every reference-carrying field.
	carrier map[string]map[string]bool
}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:    pass,
		arena:   make(map[string]bool, len(defaultArena)),
		carrier: make(map[string]map[string]bool, len(defaultCarrier)),
	}
	for k := range defaultArena {
		c.arena[k] = true
	}
	for k, v := range defaultCarrier {
		c.carrier[k] = v
	}
	for obj, ds := range analysis.TypeDirectives(pass.Files, pass.TypesInfo) {
		key := pass.Pkg.Path() + "." + obj.Name()
		if analysis.HasDirective(ds, "arena") {
			c.arena[key] = true
		}
		if analysis.HasDirective(ds, "arena-carrier") {
			if _, ok := c.carrier[key]; !ok {
				c.carrier[key] = nil
			}
		}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				c.checkFunc(fd)
			}
		}
	}
	return nil
}

// checkFunc runs the taint pass over one function body. Function
// literals nested inside are visited as part of the enclosing body (they
// share its scope), except that a literal launched with go is itself a
// violation site when it captures borrowed values.
func (c *checker) checkFunc(fd *ast.FuncDecl) {
	body := fd.Body
	tainted := make(map[types.Object]bool)

	// Arena-typed values are borrowed wherever they appear (handled by
	// type in tainted); carrier values are borrowed by provenance — a
	// carrier that arrives as a parameter or receiver wraps live arena
	// memory, while one freshly built from copies does not. Seed the
	// incoming ones here; channel receives are seeded in tainted.
	seedFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			if !c.isCarrier(analysis.TypeKey(c.pass.TypesInfo.TypeOf(f.Type))) {
				continue
			}
			for _, name := range f.Names {
				if obj := c.pass.TypesInfo.Defs[name]; obj != nil {
					tainted[obj] = true
				}
			}
		}
	}
	seedFields(fd.Recv)
	seedFields(fd.Type.Params)

	// Seed and propagate through assignments to a fixpoint. Two passes
	// over the body always suffice in practice, but loop until stable to
	// stay independent of statement order.
	for {
		changed := false
		mark := func(id *ast.Ident, from ast.Expr) {
			obj := c.pass.TypesInfo.Defs[id]
			if obj == nil {
				obj = c.pass.TypesInfo.Uses[id]
			}
			if obj == nil || tainted[obj] {
				return
			}
			if !refLike(obj.Type()) {
				return
			}
			if c.tainted(tainted, from) {
				tainted[obj] = true
				changed = true
			}
		}
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i, lhs := range n.Lhs {
						if id, ok := lhs.(*ast.Ident); ok {
							mark(id, n.Rhs[i])
						}
					}
				}
			case *ast.ValueSpec:
				if len(n.Names) == len(n.Values) {
					for i, id := range n.Names {
						mark(id, n.Values[i])
					}
				}
			case *ast.RangeStmt:
				// Ranging over a borrowed slice of reference-like
				// elements hands out borrowed elements.
				if c.tainted(tainted, n.X) {
					if id, ok := n.Value.(*ast.Ident); ok {
						mark(id, n.X)
					}
				}
			}
			return true
		})
		if !changed {
			break
		}
	}

	c.findViolations(body, tainted)
}

// tainted reports whether e evaluates to borrowed arena memory under the
// current local taint set.
func (c *checker) tainted(set map[types.Object]bool, e ast.Expr) bool {
	if e == nil {
		return false
	}
	e = ast.Unparen(e)

	// Any value of an arena type is borrowed, however it was produced —
	// HeaderView.Message() returns a borrowing Message. Carrier types
	// are borrowed by provenance, not by type: a task built from copied
	// bytes is clean, one that arrived as a parameter or over a channel
	// is not (seeded in checkFunc and the receive case below).
	if t := c.pass.TypesInfo.TypeOf(e); t != nil && c.arena[analysis.TypeKey(t)] {
		return true
	}

	switch e := e.(type) {
	case *ast.Ident:
		obj := c.pass.TypesInfo.Uses[e]
		return obj != nil && set[obj]
	case *ast.SelectorExpr:
		// A reference-carrying field of a borrowed value is borrowed;
		// scalar fields (Header.ClientID) are plain copies. Carrier
		// types declare which fields hold the borrow: pendingResult.raw
		// aliases the arena, pendingResult.rep is a decoded copy.
		if !refLike(c.pass.TypesInfo.TypeOf(e)) {
			return false
		}
		if xKey := analysis.TypeKey(c.pass.TypesInfo.TypeOf(e.X)); !c.arena[xKey] {
			if fields, ok := c.carrier[xKey]; ok && fields != nil {
				return fields[e.Sel.Name] && c.tainted(set, e.X)
			}
		}
		return c.tainted(set, e.X)
	case *ast.IndexExpr:
		return refLike(c.pass.TypesInfo.TypeOf(e)) && c.tainted(set, e.X)
	case *ast.SliceExpr:
		return c.tainted(set, e.X)
	case *ast.StarExpr:
		return c.tainted(set, e.X)
	case *ast.UnaryExpr:
		if e.Op == token.ARROW {
			// Receiving a carrier hands over the borrow it wraps.
			if c.isCarrier(analysis.TypeKey(c.pass.TypesInfo.TypeOf(e))) {
				return true
			}
		}
		return c.tainted(set, e.X)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if c.tainted(set, el) {
				return true
			}
		}
		return false
	case *ast.CallExpr:
		return c.callTainted(set, e)
	}
	return false
}

// callTainted handles the expressions where borrowing survives a call.
// append is the interesting case: append always copies the appended
// elements, so appending borrowed *bytes* onto a fresh slice is exactly
// the sanctioned copy idiom and comes out clean; the result is borrowed
// only if the destination already was, or if the elements themselves are
// reference-like (appending a borrowed task into a slice stores the
// borrow, not a copy of the bytes).
func (c *checker) callTainted(set map[types.Object]bool, call *ast.CallExpr) bool {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "append" && len(call.Args) > 0 {
			if c.tainted(set, call.Args[0]) {
				return true
			}
			st, _ := c.pass.TypesInfo.TypeOf(call.Args[0]).Underlying().(*types.Slice)
			if st != nil && !refLike(st.Elem()) {
				return false // copies scalar elements: the sanctioned idiom
			}
			for _, a := range call.Args[1:] {
				if c.tainted(set, a) {
					return true
				}
			}
			return false
		}
	}
	// A type conversion to a reference-like type keeps the borrow
	// ([]byte(x)); conversions to string or scalars copy. Ordinary calls
	// return fresh values unless their result type is an arena type,
	// which the type check at the top of tainted already caught.
	if tv, ok := c.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		return refLike(tv.Type) && len(call.Args) == 1 && c.tainted(set, call.Args[0])
	}
	return false
}

// findViolations walks the body reporting escapes of borrowed values.
func (c *checker) findViolations(body *ast.BlockStmt, set map[types.Object]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				if !c.tainted(set, n.Rhs[i]) {
					continue
				}
				if dest := c.escapingDest(set, lhs); dest != "" {
					c.pass.Reportf(n.Rhs[i].Pos(),
						"delivery-arena memory stored in %s outlives the delivery callback; copy it first (append([]byte(nil), b...))", dest)
				}
			}
		case *ast.SendStmt:
			if !c.tainted(set, n.Value) {
				return true
			}
			if ch := c.pass.TypesInfo.TypeOf(n.Chan); ch != nil {
				if chT, ok := ch.Underlying().(*types.Chan); ok && c.isCarrier(analysis.TypeKey(chT.Elem())) {
					return true
				}
			}
			c.pass.Report(n.Value.Pos(),
				"delivery-arena memory sent on a channel leaves the delivery callback; copy it first or send a declared carrier type")
		case *ast.GoStmt:
			c.checkGoCapture(n, set)
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if !c.tainted(set, res) {
					continue
				}
				key := analysis.TypeKey(c.pass.TypesInfo.TypeOf(res))
				if c.arena[key] || c.isCarrier(key) {
					continue // the caller sees the borrow in the type
				}
				c.pass.Report(res.Pos(),
					"returning delivery-arena memory as a plain value hides the borrow; copy it, or return an arena type so the caller knows")
			}
		}
		return true
	})
}

// escapingDest classifies an assignment destination that outlives the
// callback; "" means the store is a local and fine. Fields of local
// carrier values are allowed: building a task in a local before pushing
// it is the normal shape.
func (c *checker) escapingDest(set map[types.Object]bool, lhs ast.Expr) string {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			return ""
		}
		obj := c.pass.TypesInfo.Defs[lhs]
		if obj == nil {
			obj = c.pass.TypesInfo.Uses[lhs]
		}
		if v, ok := obj.(*types.Var); ok && v.Parent() != nil && v.Parent() != v.Pkg().Scope() {
			return "" // local variable
		}
		return "a package variable"
	case *ast.SelectorExpr:
		// Storing into a field of a carrier type is the carrier doing
		// its job — taskQueue.push appending a task is the sanctioned
		// handoff; the queue's consumer is covered on its own.
		if c.isCarrier(analysis.TypeKey(c.pass.TypesInfo.TypeOf(lhs.X))) {
			return ""
		}
		return "a struct field"
	case *ast.IndexExpr:
		return "a map or slice element"
	case *ast.StarExpr:
		return "a dereferenced pointer"
	}
	return ""
}

// checkGoCapture flags borrowed locals referenced inside a go'd closure.
func (c *checker) checkGoCapture(g *ast.GoStmt, set map[types.Object]bool) {
	lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
	if !ok {
		// go f(borrowed) — the argument is evaluated now but retained by
		// the new goroutine past the callback's return.
		for _, a := range g.Call.Args {
			if c.tainted(set, a) {
				c.pass.Report(a.Pos(),
					"delivery-arena memory passed to a spawned goroutine outlives the delivery callback; copy it first")
			}
		}
		return
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := c.pass.TypesInfo.Uses[id]
		if obj != nil && set[obj] {
			c.pass.Reportf(id.Pos(),
				"goroutine captures delivery-arena memory (%s) beyond the delivery callback; copy it before the go statement", id.Name)
			return true
		}
		return true
	})
}

func (c *checker) isCarrier(key string) bool {
	_, ok := c.carrier[key]
	return ok
}

// refLike reports whether a value of type t can carry a reference to the
// arena: slices, pointers, maps, channels, interfaces, functions, and
// aggregates containing any of those. Strings are immutable copies by
// construction; scalars obviously carry nothing.
func refLike(t types.Type) bool {
	return refLike1(t, 0)
}

func refLike1(t types.Type, depth int) bool {
	if t == nil || depth > 10 {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Pointer, *types.Map, *types.Chan, *types.Interface, *types.Signature:
		return true
	case *types.Array:
		return refLike1(u.Elem(), depth+1)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if refLike1(u.Field(i).Type(), depth+1) {
				return true
			}
		}
	}
	return false
}
