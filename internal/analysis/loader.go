package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
)

// Package is one type-checked module package as the module-mode driver
// sees it: syntax plus types for the non-test files.
type Package struct {
	PkgPath string
	Dir     string
	GoFiles []string
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// Loader loads a module's packages for whole-program analysis. Module
// packages are type-checked from source (so analyzers see one identity
// for every object across packages); everything else — the standard
// library and any external dependency — is imported from the gc export
// data that `go list -export` reports, which works offline and never
// compiles more than the build cache already holds.
type Loader struct {
	Fset      *token.FileSet
	ModuleDir string

	listed map[string]*listPackage
	loaded map[string]*Package
	gc     types.ImporterFrom
	export map[string]string
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Imports    []string
	Export     string
	Standard   bool
	Module     *struct {
		Path string
		Dir  string
		Main bool
	}
}

// LoadModule lists patterns (plus dependencies, with export data) in the
// module rooted at or above dir and type-checks every matched module
// package from source. It returns the matched module packages in
// deterministic (list) order.
func LoadModule(dir string, patterns ...string) (*Loader, []*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Name,Dir,GoFiles,Imports,Export,Standard,Module"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}

	l := &Loader{
		Fset:   token.NewFileSet(),
		listed: make(map[string]*listPackage),
		loaded: make(map[string]*Package),
		export: make(map[string]string),
	}
	l.gc = importer.ForCompiler(l.Fset, "gc", l.lookupExport).(types.ImporterFrom)

	var order []string
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, nil, fmt.Errorf("go list output: %w", err)
		}
		lp := p
		l.listed[lp.ImportPath] = &lp
		if lp.Export != "" {
			l.export[lp.ImportPath] = lp.Export
		}
		if lp.inModule() {
			if l.ModuleDir == "" {
				l.ModuleDir = lp.Module.Dir
			}
			order = append(order, lp.ImportPath)
		}
	}

	var pkgs []*Package
	for _, path := range order {
		pkg, err := l.loadModulePackage(path)
		if err != nil {
			return nil, nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return l, pkgs, nil
}

func (p *listPackage) inModule() bool {
	return p.Module != nil && p.Module.Main && !p.Standard
}

func (l *Loader) lookupExport(path string) (io.ReadCloser, error) {
	f, ok := l.export[path]
	if !ok {
		return nil, fmt.Errorf("no export data for %q", path)
	}
	return os.Open(f)
}

// Import resolves an import for a module package being type-checked:
// module packages from source (recursively), the rest from export data.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if lp, ok := l.listed[path]; ok && lp.inModule() {
		pkg, err := l.loadModulePackage(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.gc.ImportFrom(path, "", 0)
}

// loadModulePackage parses and type-checks one module package once.
func (l *Loader) loadModulePackage(path string) (*Package, error) {
	if pkg, ok := l.loaded[path]; ok {
		return pkg, nil
	}
	lp, ok := l.listed[path]
	if !ok {
		return nil, fmt.Errorf("package %q not listed", path)
	}
	var names []string
	for _, f := range lp.GoFiles {
		names = append(names, filepath.Join(lp.Dir, f))
	}
	pkg, err := l.CheckFiles(path, names)
	if err != nil {
		return nil, err
	}
	pkg.Dir = lp.Dir
	l.loaded[path] = pkg
	return pkg, nil
}

// CheckFiles parses and type-checks an ad-hoc set of files as one
// package under pkgPath, resolving imports through the loader. The
// analysistest harness uses it for testdata packages, which live outside
// the go tool's view of the module.
func (l *Loader) CheckFiles(pkgPath string, filenames []string) (*Package, error) {
	var files []*ast.File
	var goFiles []string
	for _, name := range filenames {
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		goFiles = append(goFiles, name)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer: l,
		Sizes:    types.SizesFor("gc", runtime.GOARCH),
	}
	tpkg, err := conf.Check(pkgPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-check %s: %w", pkgPath, err)
	}
	return &Package{PkgPath: pkgPath, GoFiles: goFiles, Files: files, Types: tpkg, Info: info}, nil
}
