// Package gospawn demands a provable lifecycle for every go statement.
//
// A gateway fleet multiplexing a million connections cannot afford
// fire-and-forget goroutines: an unbounded spawn site is a memory leak
// under load and an ordering hazard at shutdown (PR 4 fixed exactly
// such a bug by hand in the forwarder; this analyzer makes the class
// impossible to reintroduce). Every go statement must carry one of the
// accepted proofs:
//
//   - accounting: a sync.WaitGroup.Add call textually precedes the
//     spawn in the enclosing function (the Add-before-spawn idiom), or
//     the spawned body transitively calls sync.WaitGroup.Done;
//   - signalling: the spawned body transitively closes a channel, or
//     blocks on a channel receive (a unary <-, a select comm case, or a
//     range over a channel) — a done/stop channel or context.Done ties
//     the goroutine to its owner's lifetime;
//   - bounded handoff: the spawned body's only channel interaction is a
//     send on a channel every make site of which has constant positive
//     capacity, so the goroutine provably terminates.
//
// The transitive search follows static same-package callees of the
// spawned body (via internal/analysis/callgraph) but not nested go
// statements — a nested spawn needs its own proof. Spawns whose
// function cannot be resolved statically (a function value, a method of
// another package) prove nothing and are reported; if the lifecycle is
// real but invisible, say why with //lint:allow gospawn <reason>.
package gospawn

import (
	"go/ast"
	"go/token"
	"go/types"

	"eternalgw/internal/analysis"
	"eternalgw/internal/analysis/callgraph"
)

var Analyzer = &analysis.Analyzer{
	Name: "gospawn",
	Doc:  "requires every go statement to have a provable lifecycle (WaitGroup, done channel, or bounded handoff)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	g := callgraph.New(pass.Files, pass.TypesInfo)
	chans := g.Chans()
	p := &prover{pass: pass, g: g, chans: chans}

	for _, fn := range g.Funcs() {
		fd := g.Decl(fn)
		// Positions of WaitGroup.Add calls in this declaration, for the
		// Add-before-spawn proof.
		var addPositions []token.Pos
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if analysis.FuncKey(analysis.Callee(pass.TypesInfo, call)) == "sync.WaitGroup.Add" {
				addPositions = append(addPositions, call.Pos())
			}
			return true
		})
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			for _, pos := range addPositions {
				if pos < gs.Pos() {
					return true // Add-before-spawn
				}
			}
			if body := g.SpawnedBody(gs); body != nil {
				if p.bodyProves(body) {
					return true
				}
			}
			pass.Reportf(gs.Pos(),
				"go statement without a provable lifecycle; tie it to a WaitGroup or done channel, bound it with a buffered handoff, or add //lint:allow gospawn <reason>")
			return true
		})
	}
	return nil
}

type prover struct {
	pass  *analysis.Pass
	g     *callgraph.Graph
	chans *callgraph.ChanFacts
}

// bodyProves searches the spawned body, and transitively its static
// same-package callees, for any accepted lifecycle proof.
func (p *prover) bodyProves(body *ast.BlockStmt) bool {
	visited := make(map[*types.Func]bool)
	var search func(n ast.Node) bool
	search = func(n ast.Node) bool {
		proved := false
		ast.Inspect(n, func(n ast.Node) bool {
			if proved {
				return false
			}
			switch n := n.(type) {
			case *ast.GoStmt:
				// A nested spawn needs its own proof; still evaluate the
				// argument expressions, which run on this goroutine.
				for _, a := range n.Call.Args {
					if search(a) {
						proved = true
					}
				}
				return false
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					proved = true // blocks on a receive
					return false
				}
			case *ast.RangeStmt:
				if t := p.pass.TypesInfo.TypeOf(n.X); t != nil {
					if _, ok := t.Underlying().(*types.Chan); ok {
						proved = true // drains until close
						return false
					}
				}
			case *ast.SendStmt:
				if p.chans.ProvablyBuffered(n.Chan) {
					proved = true // bounded handoff
					return false
				}
			case *ast.CallExpr:
				if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
					if b, ok := p.pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "close" {
						proved = true // signals a done channel
						return false
					}
				}
				callee := analysis.Callee(p.pass.TypesInfo, n)
				if analysis.FuncKey(callee) == "sync.WaitGroup.Done" {
					proved = true
					return false
				}
				if fd := p.g.Decl(callee); fd != nil && !visited[callee] {
					visited[callee] = true
					if search(fd.Body) {
						proved = true
						return false
					}
				}
			}
			return true
		})
		return proved
	}
	return search(body)
}
