// Package spawn exercises the gospawn analyzer: every go statement must
// carry a provable lifecycle — WaitGroup accounting, done-channel
// signalling, or a bounded buffered handoff — or an audited allow.
package spawn

import "sync"

func bare(work func()) {
	go work() // want `go statement without a provable lifecycle`
}

func accounted(work func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	// Add textually precedes the spawn in this declaration: proved.
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

func doneInBody(wg *sync.WaitGroup, work func()) {
	// No Add here (the caller did it), but the body's Done is proof
	// enough on its own.
	go func() {
		defer wg.Done()
		work()
	}()
}

func signalled(stop chan struct{}, work func()) {
	// Blocking on a receive ties the goroutine to its owner's lifetime.
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			work()
		}
	}()
}

func closes(done chan struct{}, work func()) {
	// Closing a done channel is the signalling half of the contract.
	go func() {
		defer close(done)
		work()
	}()
}

func drains(jobs chan int, work func(int)) {
	// Ranging over a channel drains until close: the sender owns the
	// lifetime.
	go func() {
		for j := range jobs {
			work(j)
		}
	}()
}

func handoff(work func() int) chan int {
	results := make(chan int, 1)
	// Every make site of results has constant positive capacity, so the
	// send cannot block: the goroutine provably terminates.
	go func() {
		results <- work()
	}()
	return results
}

func unbounded(results chan int, work func() int) {
	// results comes from the caller: no make site is visible, so the
	// send proves nothing.
	go func() { // want `go statement without a provable lifecycle`
		results <- work()
	}()
}

func viaHelper(wg *sync.WaitGroup, work func()) {
	// The proof may live in a directly spawned same-package callee.
	go tracked(wg, work)
}

func tracked(wg *sync.WaitGroup, work func()) {
	defer wg.Done()
	work()
}

func nested(wg *sync.WaitGroup, work func()) {
	// The outer spawn is proved by its Done; the nested spawn needs its
	// own proof and has none.
	go func() {
		defer wg.Done()
		go work() // want `go statement without a provable lifecycle`
	}()
}

func sanctioned(work func()) {
	//lint:allow gospawn the scheduler owns this goroutine and joins it at shutdown
	go work()
}
