// Package spawnregress replays the PR 4 gateway bug against the real
// replication types: the gateway's group observer spawned one
// fire-and-forget goroutine per client-departure notification to drop
// the departed client's records, so a departure storm grew goroutines
// without bound. The fix — a bounded queue drained by one accounted
// worker — is the shape the analyzer accepts.
package spawnregress

import (
	"sync"

	"eternalgw/internal/replication"
)

type store struct {
	mu      sync.Mutex
	records map[string][]uint64
	departq chan string
	wg      sync.WaitGroup
}

// buggyObserve is the pre-fix shape: one goroutine per departure,
// nothing bounds or joins them.
func (s *store) buggyObserve(msg replication.Message, ts uint64) {
	if msg.Header.Kind != replication.KindGatewayControl {
		return
	}
	go s.dropClient(string(msg.Payload)) // want `go statement without a provable lifecycle`
}

// observe is the fixed shape: departures enqueue onto a bounded channel
// (drops counted by the caller) and one worker drains it.
func (s *store) observe(msg replication.Message, ts uint64) {
	if msg.Header.Kind != replication.KindGatewayControl {
		return
	}
	select {
	case s.departq <- string(msg.Payload):
	default:
	}
}

func newStore() *store {
	s := &store{
		records: make(map[string][]uint64),
		departq: make(chan string, 4096),
	}
	s.wg.Add(1)
	go s.departureLoop()
	return s
}

func (s *store) departureLoop() {
	defer s.wg.Done()
	for id := range s.departq {
		s.dropClient(id)
	}
}

func (s *store) dropClient(id string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.records, id)
}

func (s *store) close() {
	close(s.departq)
	s.wg.Wait()
}
