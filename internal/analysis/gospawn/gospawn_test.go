package gospawn_test

import (
	"strings"
	"testing"

	"eternalgw/internal/analysis/analysistest"
	"eternalgw/internal/analysis/gospawn"
)

func TestGoSpawn(t *testing.T) {
	analysistest.Run(t, gospawn.Analyzer, "spawn")
}

// TestGoSpawnRegress replays the PR 4 unbounded-departure-spawn bug
// against the real replication types.
func TestGoSpawnRegress(t *testing.T) {
	analysistest.Run(t, gospawn.Analyzer, "spawnregress")
}

// TestGoSpawnMutation deletes the WaitGroup accounting from a
// known-good fan-out and proves the analyzer fires on exactly that
// change.
func TestGoSpawnMutation(t *testing.T) {
	const good = `package m

import "sync"

func fan(work []func()) {
	var wg sync.WaitGroup
	for _, w := range work {
		wg.Add(1)
		go func(w func()) {
			defer wg.Done()
			w()
		}(w)
	}
	wg.Wait()
}
`
	if ds := analysistest.Diagnostics(t, gospawn.Analyzer, "gospawn_good", good); len(ds) != 0 {
		t.Fatalf("good snippet: unexpected diagnostics %v", ds)
	}

	mutant := strings.Replace(good, "wg.Add(1)\n\t\t", "", 1)
	mutant = strings.Replace(mutant, "defer wg.Done()\n\t\t\t", "", 1)
	ds := analysistest.Diagnostics(t, gospawn.Analyzer, "gospawn_mutant", mutant)
	if len(ds) != 1 || !strings.Contains(ds[0].Message, "provable lifecycle") {
		t.Fatalf("mutant (no accounting): want one lifecycle diagnostic, got %v", ds)
	}
}
