package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Shared resolution helpers for the analyzers.

// TypeKey names a (possibly pointer-wrapped) named type as
// "importpath.Name"; "" for everything else.
func TypeKey(t types.Type) string {
	if t == nil {
		return ""
	}
	if p, ok := t.Underlying().(*types.Pointer); ok && !isNamed(t) {
		t = p.Elem()
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Path() + "." + obj.Name()
}

func isNamed(t types.Type) bool {
	_, ok := t.(*types.Named)
	return ok
}

// FuncKey names a function or method: "importpath.Func" for package
// functions, "importpath.Recv.Method" for methods (pointer receivers
// included, without the star).
func FuncKey(fn *types.Func) string {
	if fn == nil {
		return ""
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		if key := TypeKey(sig.Recv().Type()); key != "" {
			return key + "." + fn.Name()
		}
	}
	if fn.Pkg() == nil {
		return fn.Name()
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// Callee resolves a call expression to its static callee, looking
// through parentheses. Interface-method and function-value calls where
// no single static target exists return nil.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// TypeDirectives returns the "gwlint:" directives attached to type
// declarations in the package's files, keyed by the declared type name's
// object. A directive is any comment line of the form "// gwlint:<word>"
// (with or without the space) in the type's doc comment or on the line
// of its TypeSpec.
func TypeDirectives(files []*ast.File, info *types.Info) map[types.Object][]string {
	out := make(map[types.Object][]string)
	for _, f := range files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				obj := info.Defs[ts.Name]
				if obj == nil {
					continue
				}
				for _, cg := range []*ast.CommentGroup{gd.Doc, ts.Doc, ts.Comment} {
					for _, d := range directivesIn(cg) {
						out[obj] = append(out[obj], d)
					}
				}
			}
		}
	}
	return out
}

// FuncDirectives is TypeDirectives for function declarations.
func FuncDirectives(files []*ast.File, info *types.Info) map[types.Object][]string {
	out := make(map[types.Object][]string)
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj := info.Defs[fd.Name]
			if obj == nil {
				continue
			}
			for _, d := range directivesIn(fd.Doc) {
				out[obj] = append(out[obj], d)
			}
		}
	}
	return out
}

func directivesIn(cg *ast.CommentGroup) []string {
	if cg == nil {
		return nil
	}
	var out []string
	for _, c := range cg.List {
		text := strings.TrimSpace(strings.TrimLeft(strings.TrimPrefix(c.Text, "//"), " "))
		if strings.HasPrefix(text, "gwlint:") {
			out = append(out, strings.Fields(strings.TrimPrefix(text, "gwlint:"))[0])
		}
	}
	return out
}

// HasDirective reports whether directives contains want.
func HasDirective(directives []string, want string) bool {
	for _, d := range directives {
		if d == want {
			return true
		}
	}
	return false
}
