package syncextra_test

import (
	"testing"

	"eternalgw/internal/analysis/analysistest"
	"eternalgw/internal/analysis/syncextra"
)

func TestSyncExtra(t *testing.T) {
	analysistest.Run(t, syncextra.Analyzer, "syncx")
}
