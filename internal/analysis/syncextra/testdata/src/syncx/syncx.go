// Package syncx exercises the syncextra analyzer: the gwlint:nocopy
// directive puts lock-free ring types under copylocks-style rules, sync
// primitives are covered transitively, and function-style sync/atomic
// calls are rejected in favor of the typed atomics — with the 32-bit
// misalignment called out when it is provable.
package syncx

import (
	"sync"
	"sync/atomic"
)

// ring has no locks — it is guarded by its shard's mutex — so stock
// vet's copylocks says nothing about copying it; the directive does.
//
// gwlint:nocopy
type ring struct {
	buf  []uint64
	head int
}

// table contains a mutex, so it is covered automatically, like vet.
type table struct {
	mu sync.Mutex
	n  int
}

var t0 table

func byValueParam(r ring) int { // want `parameter of no-copy type`
	return r.head
}

func byValueResult(r *ring) (ring, bool) { // want `result of no-copy type`
	return *r, true // want `return copies a value of no-copy type`
}

func assigns(r *ring) int {
	cp := *r // want `assignment copies a value of no-copy type`
	return cp.head
}

func ranges(rs []ring) int {
	n := 0
	for _, r := range rs { // want `range copies a value of no-copy type`
		n += r.head
	}
	return n
}

func consume(any) {}

func passes(r *ring) {
	consume(*r) // want `call passes by value a value of no-copy type`
}

func snapshot() table { // want `result of no-copy type`
	return t0 // want `return copies a value of no-copy type`
}

// Pointers are always fine.
func viaPointer(r *ring) *ring {
	return r
}

// counters mixes a 32-bit field before a 64-bit one: under GOARCH=386
// layout the uint64 lands at offset 4, which is the crash the typed
// atomics exist to prevent.
type counters struct {
	flag uint32
	n    uint64
}

func bumpMisaligned(c *counters) {
	atomic.AddUint64(&c.n, 1) // want `function-style sync/atomic call AddUint64.*crashes on 386/arm`
}

type aligned struct {
	n uint64
}

func bumpAligned(a *aligned) {
	atomic.AddUint64(&a.n, 1) // want `function-style sync/atomic call AddUint64`
}

func load32(c *counters) uint32 {
	return atomic.LoadUint32(&c.flag) // want `function-style sync/atomic call LoadUint32`
}

// The typed atomics are the sanctioned API; nothing to report.
type modern struct {
	n atomic.Uint64
}

func bumpTyped(m *modern) uint64 {
	return m.n.Add(1)
}

// The escape hatch applies here too.
func sanctioned(c *counters) {
	atomic.AddUint32(&c.flag, 1) //lint:allow syncextra interop with a cgo counter that predates the typed atomics
}
