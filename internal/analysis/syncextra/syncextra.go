// Package syncextra tightens vet's mutex-copy and atomic-alignment
// checking for the sharded pending/record tables.
//
// Two hazards in this codebase sit just outside stock vet's reach:
//
//  1. The eviction rings (core.keyRing, replication.opKeyRing) contain
//     no locks — they are guarded by their shard's mutex — so vet's
//     copylocks says nothing when one is copied by value. But a copy
//     aliases the ring's buffer while diverging its head index, which
//     corrupts FIFO eviction as silently as a copied mutex corrupts
//     exclusion. Declaring "gwlint:nocopy" on a type (a directive
//     comment on its declaration) brings it under the same copy rules
//     as a lock: no by-value assignment from an existing value, no
//     by-value parameters, arguments, returns, or range elements.
//     Types that transitively contain a sync primitive or a typed
//     atomic are covered automatically, like vet, so the analyzer is
//     self-sufficient in module mode.
//
//  2. The repository standardized on the typed atomics (atomic.Uint64
//     and friends, always correctly aligned thanks to the runtime's
//     align64 support) after mixed function-style usage caused a
//     32-bit alignment crash risk in an early sharded-table draft. Any
//     call to the function-style sync/atomic API is reported; when the
//     operand is a struct field whose offset under GOARCH=386 rules is
//     not 8-byte aligned, the finding says so explicitly — that is the
//     crash, not just a style violation.
package syncextra

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"

	"eternalgw/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "syncextra",
	Doc:  "no-copy discipline for ring/shard types and typed-atomics enforcement beyond stock vet",
	Run:  run,
}

type checker struct {
	pass   *analysis.Pass
	nocopy map[string]bool     // TypeKeys declared gwlint:nocopy
	memo   map[types.Type]bool // containsNoCopy cache
}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:   pass,
		nocopy: make(map[string]bool),
		memo:   make(map[types.Type]bool),
	}
	for obj, ds := range analysis.TypeDirectives(pass.Files, pass.TypesInfo) {
		if analysis.HasDirective(ds, "nocopy") {
			c.nocopy[pass.Pkg.Path()+"."+obj.Name()] = true
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, c.inspect)
	}
	return nil
}

func (c *checker) inspect(n ast.Node) bool {
	switch n := n.(type) {
	case *ast.AssignStmt:
		if len(n.Lhs) != len(n.Rhs) {
			return true
		}
		for i := range n.Rhs {
			c.checkCopy(n.Rhs[i], "assignment copies")
		}
	case *ast.ValueSpec:
		for _, v := range n.Values {
			c.checkCopy(v, "initialization copies")
		}
	case *ast.CallExpr:
		c.checkAtomicCall(n)
		if analysis.Callee(c.pass.TypesInfo, n) != nil || isConversion(c.pass.TypesInfo, n) {
			for _, a := range n.Args {
				c.checkCopy(a, "call passes by value")
			}
		}
	case *ast.ReturnStmt:
		for _, r := range n.Results {
			c.checkCopy(r, "return copies")
		}
	case *ast.RangeStmt:
		if n.Value != nil {
			if t := c.pass.TypesInfo.TypeOf(n.Value); c.noCopyType(t) {
				c.pass.Reportf(n.Value.Pos(),
					"range copies a value of no-copy type %s; iterate by index and take addresses", analysis.TypeKey(t))
			}
		}
	case *ast.FuncDecl:
		c.checkSignature(n)
	}
	return true
}

// checkCopy flags e when evaluating it copies an existing value of a
// no-copy type. Composite literals and function results are fresh values
// being placed, not copies of a live one, so they pass — the same rule
// vet's copylocks applies.
func (c *checker) checkCopy(e ast.Expr, how string) {
	switch ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
	default:
		return
	}
	t := c.pass.TypesInfo.TypeOf(e)
	if !c.noCopyType(t) {
		return
	}
	c.pass.Reportf(e.Pos(), "%s a value of no-copy type %s; use a pointer", how, analysis.TypeKey(t))
}

// checkSignature flags by-value parameters, receivers and results of
// no-copy types on function declarations.
func (c *checker) checkSignature(fd *ast.FuncDecl) {
	flag := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			t := c.pass.TypesInfo.TypeOf(f.Type)
			if c.noCopyType(t) {
				c.pass.Reportf(f.Type.Pos(), "%s of no-copy type %s passed by value; use a pointer", what, analysis.TypeKey(t))
			}
		}
	}
	flag(fd.Recv, "receiver")
	flag(fd.Type.Params, "parameter")
	flag(fd.Type.Results, "result")
}

// noCopyType reports whether a value of t must not be copied: declared
// gwlint:nocopy, or transitively containing a sync primitive or typed
// atomic. Pointers are always copyable.
func (c *checker) noCopyType(t types.Type) bool {
	if t == nil {
		return false
	}
	if v, ok := c.memo[t]; ok {
		return v
	}
	c.memo[t] = false // cut recursion on cyclic types
	v := c.noCopy1(t)
	c.memo[t] = v
	return v
}

func (c *checker) noCopy1(t types.Type) bool {
	key := analysis.TypeKey(t)
	if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
		return false
	}
	if c.nocopy[key] || isSyncPrimitive(key) {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if c.noCopyType(u.Field(i).Type()) {
				return true
			}
		}
	case *types.Array:
		return c.noCopyType(u.Elem())
	}
	return false
}

func isSyncPrimitive(key string) bool {
	switch key {
	case "sync.Mutex", "sync.RWMutex", "sync.WaitGroup", "sync.Cond", "sync.Once", "sync.Map", "sync.Pool":
		return true
	}
	return strings.HasPrefix(key, "sync/atomic.")
}

// checkAtomicCall flags function-style sync/atomic usage, with the
// 32-bit misalignment called out when provable.
func (c *checker) checkAtomicCall(call *ast.CallExpr) {
	fn := analysis.Callee(c.pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return // methods on the typed atomics are the sanctioned API
	}
	msg := "function-style sync/atomic call " + fn.Name() + "; use the typed atomics (atomic.Uint64 and friends)"
	if strings.Contains(fn.Name(), "64") && len(call.Args) > 0 {
		if off, field, ok := c.fieldOffset32(call.Args[0]); ok && off%8 != 0 {
			msg += "; field " + field + " is at offset " + strconv.FormatInt(off, 10) + " under 32-bit alignment rules — this crashes on 386/arm"
		}
	}
	c.pass.Report(call.Pos(), msg)
}

// fieldOffset32 resolves &x.f (or x.f for pointer-typed fields) to the
// field's byte offset within its struct under 32-bit (GOARCH=386) layout.
func (c *checker) fieldOffset32(arg ast.Expr) (int64, string, bool) {
	un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
	if !ok {
		return 0, "", false
	}
	sel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
	if !ok {
		return 0, "", false
	}
	selection, ok := c.pass.TypesInfo.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return 0, "", false
	}
	recv := selection.Recv()
	if p, ok := recv.Underlying().(*types.Pointer); ok {
		recv = p.Elem()
	}
	var offset int64
	t := recv
	for _, idx := range selection.Index() {
		st, ok := t.Underlying().(*types.Struct)
		if !ok {
			return 0, "", false
		}
		fields := make([]*types.Var, st.NumFields())
		for i := range fields {
			fields[i] = st.Field(i)
		}
		offsets := c.pass.Sizes32.Offsetsof(fields)
		offset += offsets[idx]
		t = st.Field(idx).Type()
	}
	return offset, sel.Sel.Name, true
}

func isConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsType()
}
