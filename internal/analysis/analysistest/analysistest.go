// Package analysistest is a small golden-file harness for the gwlint
// analyzers, mirroring golang.org/x/tools/go/analysis/analysistest:
// test packages live under testdata/src/<pkg>/, and every line where an
// analyzer must report carries a trailing comment of the form
//
//	code() // want "regexp" "another regexp"
//
// The harness type-checks the testdata package against the real module
// (so corpora may import eternalgw/internal/... packages), runs the
// analyzer through the same RunAnalyzers entry point the drivers use —
// //lint:allow processing included — and fails the test on any
// unexpected or missing diagnostic.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"eternalgw/internal/analysis"
)

// The module is listed and type-checked once per test binary: every Run
// call shares one Loader, so corpora that import eternalgw packages see
// the same type identities the analyzers key on.
var (
	loadOnce sync.Once
	loadL    *analysis.Loader
	loadPkgs []*analysis.Package
	loadErr  error
)

func sharedLoader() (*analysis.Loader, error) {
	loadOnce.Do(func() {
		moduleDir, err := findModuleDir()
		if err != nil {
			loadErr = err
			return
		}
		loadL, loadPkgs, loadErr = analysis.LoadModule(moduleDir)
	})
	return loadL, loadErr
}

// Loader returns the shared module loader, for driver-level tests that
// invoke module-mode checks (analysis.GlobalCheck) directly.
func Loader(t *testing.T) *analysis.Loader {
	t.Helper()
	l, err := sharedLoader()
	if err != nil {
		t.Fatalf("analysistest: load module: %v", err)
	}
	return l
}

// ModulePackage returns one of the module's own type-checked packages,
// so a global check can be run over a mix of real and testdata packages.
func ModulePackage(t *testing.T, path string) *analysis.Package {
	t.Helper()
	Loader(t)
	for _, pkg := range loadPkgs {
		if pkg.PkgPath == path {
			return pkg
		}
	}
	t.Fatalf("analysistest: module package %q not loaded", path)
	return nil
}

// Check type-checks testdata/src/<pkg> against the real module and
// returns it without running any analyzer, for driver-level tests.
func Check(t *testing.T, pkg string) *analysis.Package {
	t.Helper()
	dir := filepath.Join("testdata", "src", pkg)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(files)
	if len(files) == 0 {
		t.Fatalf("analysistest: no .go files in %s", dir)
	}
	l := Loader(t)
	tp, err := l.CheckFiles("gwlint-testdata/"+pkg, files)
	if err != nil {
		t.Fatalf("analysistest: type-check %s: %v", dir, err)
	}
	return tp
}

// Diagnostics type-checks one source string as an ad-hoc package and
// returns the analyzer's surviving findings. Mutation-style tests use it
// in pairs: a known-good snippet must stay silent, and the same snippet
// with one invariant deliberately broken must fire.
func Diagnostics(t *testing.T, a *analysis.Analyzer, name, src string) []analysis.Diagnostic {
	t.Helper()
	l := Loader(t)
	file := filepath.Join(t.TempDir(), name+".go")
	if err := os.WriteFile(file, []byte(src), 0o644); err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	tp, err := l.CheckFiles("gwlint-mutation/"+name, []string{file})
	if err != nil {
		t.Fatalf("analysistest: type-check %s: %v", name, err)
	}
	diags, err := analysis.RunAnalyzers(l.Fset, tp.Files, tp.Types, tp.Info, l.ModuleDir, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("analysistest: run %s: %v", a.Name, err)
	}
	return diags
}

// expectation is one want regexp awaiting a diagnostic.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	met  bool
}

// Run checks one analyzer against testdata/src/<pkg> relative to the
// calling test's package directory.
func Run(t *testing.T, a *analysis.Analyzer, pkg string) {
	t.Helper()

	l := Loader(t)
	tp := Check(t, pkg)
	diags, err := analysis.RunAnalyzers(l.Fset, tp.Files, tp.Types, tp.Info, l.ModuleDir, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("analysistest: run %s: %v", a.Name, err)
	}

	wants := collectWants(t, l.Fset, tp.Files)
	for _, d := range diags {
		pos := l.Fset.Position(d.Pos)
		if w := matchWant(wants, pos.Filename, pos.Line, d.Message); w == nil {
			t.Errorf("%s:%d: unexpected diagnostic: %s: %s", pos.Filename, pos.Line, d.Analyzer, d.Message)
		}
	}
	for _, w := range wants {
		if !w.met {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.raw)
		}
	}
}

// collectWants parses the `// want "re"...` comments of the package.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []*expectation {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				idx := strings.Index(text, "want ")
				if idx < 0 || strings.TrimSpace(text[:idx]) != "" {
					continue
				}
				pos := fset.Position(c.Pos())
				res, err := parseWants(strings.TrimSpace(text[idx+len("want "):]))
				if err != nil {
					t.Fatalf("%s:%d: %v", pos.Filename, pos.Line, err)
				}
				for _, raw := range res {
					re, err := regexp.Compile(raw)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, raw, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: raw})
				}
			}
		}
	}
	return wants
}

// parseWants splits a want payload into its quoted regexps.
func parseWants(s string) ([]string, error) {
	var out []string
	for s = strings.TrimSpace(s); s != ""; s = strings.TrimSpace(s) {
		if s[0] != '"' && s[0] != '`' {
			return nil, fmt.Errorf("want: expected quoted regexp, have %q", s)
		}
		end := -1
		if s[0] == '`' {
			if i := strings.IndexByte(s[1:], '`'); i >= 0 {
				end = i + 2
			}
		} else {
			for i := 1; i < len(s); i++ {
				if s[i] == '\\' {
					i++
					continue
				}
				if s[i] == '"' {
					end = i + 1
					break
				}
			}
		}
		if end < 0 {
			return nil, fmt.Errorf("want: unterminated quote in %q", s)
		}
		unq, err := strconv.Unquote(s[:end])
		if err != nil {
			return nil, fmt.Errorf("want: %q: %v", s[:end], err)
		}
		out = append(out, unq)
		s = s[end:]
	}
	return out, nil
}

// matchWant finds and consumes the first unmet expectation on the
// diagnostic's line whose regexp matches the message.
func matchWant(wants []*expectation, file string, line int, msg string) *expectation {
	for _, w := range wants {
		if !w.met && w.file == file && w.line == line && w.re.MatchString(msg) {
			w.met = true
			return w
		}
	}
	return nil
}

// findModuleDir walks up from the working directory to go.mod.
func findModuleDir() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for d := dir; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		d = parent
	}
}
