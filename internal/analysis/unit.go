package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// VetConfig mirrors the JSON configuration cmd/go writes for a vettool
// (the unitchecker protocol): one build unit, with imports resolved to
// the export files the build already produced.
type VetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// RunUnit is the `go vet -vettool` entry point: read the vet.cfg named
// by cfgPath, analyze the unit, print findings vet-style to stderr and
// return the process exit code (0 clean, 2 findings, 1 internal error).
func RunUnit(cfgPath string, analyzers []*Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gwlint:", err)
		return 1
	}
	var cfg VetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintln(os.Stderr, "gwlint: parsing", cfgPath+":", err)
		return 1
	}
	// cmd/go runs the tool over dependencies purely to collect facts
	// (VetxOnly) and over the per-package test units; this suite keeps
	// package-local invariants about non-test code, so both cases are
	// no-ops. The vetx file must still appear for the cache.
	writeVetx := func() {
		if cfg.VetxOutput != "" {
			_ = os.WriteFile(cfg.VetxOutput, []byte{}, 0o666)
		}
	}
	if cfg.VetxOnly || strings.Contains(cfg.ID, " [") || strings.HasSuffix(cfg.ImportPath, ".test") {
		writeVetx()
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gwlint:", err)
			return 1
		}
		files = append(files, f)
	}

	imp := &unitImporter{cfg: &cfg}
	imp.gc = importer.ForCompiler(fset, "gc", imp.lookup).(types.ImporterFrom)
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: imp, Sizes: types.SizesFor("gc", runtime.GOARCH)}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			writeVetx()
			return 0
		}
		fmt.Fprintln(os.Stderr, "gwlint:", err)
		return 1
	}

	diags, err := RunAnalyzers(fset, files, tpkg, info, findModuleDir(cfg.Dir), analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gwlint:", err)
		return 1
	}
	writeVetx()
	if len(diags) == 0 {
		return 0
	}
	PrintDiagnostics(os.Stderr, fset, diags)
	return 2
}

// unitImporter resolves the unit's imports: source import paths map
// through ImportMap to canonical paths, whose export files cmd/go listed
// in PackageFile.
type unitImporter struct {
	cfg *VetConfig
	gc  types.ImporterFrom
}

func (u *unitImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if canon, ok := u.cfg.ImportMap[path]; ok {
		path = canon
	}
	return u.gc.ImportFrom(path, "", 0)
}

func (u *unitImporter) lookup(path string) (io.ReadCloser, error) {
	file, ok := u.cfg.PackageFile[path]
	if !ok {
		return nil, fmt.Errorf("no package file for %q", path)
	}
	return os.Open(file)
}

// findModuleDir walks up from dir to the enclosing go.mod.
func findModuleDir(dir string) string {
	for d := dir; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d
		}
		parent := filepath.Dir(d)
		if parent == d {
			return ""
		}
		d = parent
	}
}

// PrintDiagnostics renders findings vet-style, sorted by position.
func PrintDiagnostics(w io.Writer, fset *token.FileSet, diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return diags[i].Message < diags[j].Message
	})
	for _, d := range diags {
		fmt.Fprintf(w, "%s: %s: %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
	}
}
