package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// The //lint:allow escape hatch. A directive of the form
//
//	//lint:allow <analyzer> <reason>
//
// suppresses that analyzer's findings on the directive's own line, or —
// when the directive stands alone on its line — on the line immediately
// below (the staticcheck //lint:ignore placement). The reason is
// mandatory: an allow that does not say why it is safe is itself a
// finding, as is one naming an analyzer that is not in the suite.
const allowPrefix = "//lint:allow"

// allowKey identifies one suppressed (file line, analyzer) pair.
type allowKey struct {
	file string
	line int
	name string
}

type allowSet struct {
	keys map[allowKey]bool
}

// suppresses reports whether d is covered by a directive.
func (s allowSet) suppresses(fset *token.FileSet, d Diagnostic) bool {
	pos := fset.Position(d.Pos)
	return s.keys[allowKey{file: pos.Filename, line: pos.Line, name: d.Analyzer}]
}

// collectAllows scans every comment for allow directives. Well-formed
// directives populate the suppression set; malformed ones (missing
// reason, unknown analyzer) are returned as diagnostics so the escape
// hatch cannot silently rot.
func collectAllows(fset *token.FileSet, files []*ast.File, analyzers []*Analyzer) (allowSet, []Diagnostic) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	set := allowSet{keys: make(map[allowKey]bool)}
	var malformed []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, allowPrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, allowPrefix))
				name, reason, _ := strings.Cut(rest, " ")
				pos := fset.Position(c.Pos())
				if name == "" || strings.TrimSpace(reason) == "" {
					malformed = append(malformed, Diagnostic{
						Pos:      c.Pos(),
						Analyzer: "lintdirective",
						Message:  "malformed //lint:allow: want \"//lint:allow <analyzer> <reason>\" with a non-empty reason",
					})
					continue
				}
				if !known[name] {
					malformed = append(malformed, Diagnostic{
						Pos:      c.Pos(),
						Analyzer: "lintdirective",
						Message:  "//lint:allow names unknown analyzer " + name,
					})
					continue
				}
				set.keys[allowKey{file: pos.Filename, line: pos.Line, name: name}] = true
				// A directive alone on its line covers the next line.
				if lineIsOnlyComment(fset, f, c) {
					set.keys[allowKey{file: pos.Filename, line: pos.Line + 1, name: name}] = true
				}
			}
		}
	}
	return set, malformed
}

// lineIsOnlyComment reports whether c is the only token on its line, by
// checking that no non-comment node of the file starts or ends on it.
func lineIsOnlyComment(fset *token.FileSet, f *ast.File, c *ast.Comment) bool {
	line := fset.Position(c.Pos()).Line
	only := true
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil || !only {
			return false
		}
		switch n.(type) {
		case *ast.File, *ast.Comment, *ast.CommentGroup:
			return true
		}
		if fset.Position(n.Pos()).Line <= line && line <= fset.Position(n.End()).Line {
			// A spanning node (block, function) is fine; a node that
			// starts or ends exactly on the line means code shares it.
			if fset.Position(n.Pos()).Line == line || fset.Position(n.End()).Line == line {
				only = false
				return false
			}
		}
		return true
	})
	return only
}
