package looplock_test

import (
	"testing"

	"eternalgw/internal/analysis/analysistest"
	"eternalgw/internal/analysis/looplock"
)

func TestLoopLock(t *testing.T) {
	analysistest.Run(t, looplock.Analyzer, "loop")
}
