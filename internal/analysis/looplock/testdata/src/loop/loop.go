// Package loop exercises the looplock analyzer: functions rooted with
// the gwlint:eventloop directive (standing in for the replication
// datapath handlers) must not reach a blocking operation.
package loop

import (
	"net"
	"sync"
	"time"
)

type state struct {
	dir        sync.RWMutex
	leaf       sync.Mutex
	wg         sync.WaitGroup
	unbuffered chan struct{}
	buffered   chan struct{}
}

func newState() *state {
	return &state{
		unbuffered: make(chan struct{}),
		buffered:   make(chan struct{}, 8),
	}
}

// gwlint:eventloop
func handler(s *state) {
	time.Sleep(time.Millisecond) // want `time.Sleep on the replication event loop \(reachable via handler\)`
	s.dir.Lock()                 // want `write-Lock of a sync.RWMutex`
	s.wg.Wait()                  // want `sync\.WaitGroup\.Wait on the replication event loop`
	helper(s)
}

// helper is not a root itself; it is reached through handler and the
// report spells out the path.
func helper(s *state) {
	s.unbuffered <- struct{}{} // want `channel send may block the replication event loop \(reachable via handler → helper\)`
}

// gwlint:eventloop
func dials() {
	_, _ = net.Dial("tcp", "127.0.0.1:0") // want `net.Dial on the replication event loop`
}

// gwlint:eventloop
func waits(s *state) {
	select { // want `select without default may block`
	case <-s.unbuffered:
	}
}

// gwlint:eventloop
func fine(s *state) {
	// Short leaf-level mutex sections and read locks are the sharded
	// tables' design; both are allowed.
	s.leaf.Lock()
	s.leaf.Unlock()
	s.dir.RLock()
	s.dir.RUnlock()
	// Every make site of s.buffered has a constant capacity, so this
	// send cannot block its single producer.
	s.buffered <- struct{}{}
	// A send that is the comm case of a select with default never
	// blocks either.
	select {
	case s.unbuffered <- struct{}{}:
	default:
	}
}

// gwlint:eventloop
func spawns(s *state) {
	// The goroutine runs off the loop: nothing inside is reported.
	go func() {
		time.Sleep(time.Millisecond)
		s.unbuffered <- struct{}{}
	}()
}

// gwlint:eventloop
func sanctioned() {
	time.Sleep(time.Millisecond) //lint:allow looplock exercised only from the membership path, which may block
}
