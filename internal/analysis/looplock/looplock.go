// Package looplock rejects blocking operations reachable from the
// replication event loop's datapath dispatch.
//
// The event loop (replication/loop.go run → handleDelivery) is the
// gateway's only consumer of totem deliveries: one blocked callback
// stalls every ring. The datapath header kinds (invocations, responses,
// voting responses, observer notifications, gateway control) are
// dispatched under a read lock and must stay wait-free; only the rare
// membership/state-transfer kinds may take the directory write lock,
// which is why the analyzer roots at the datapath handlers rather than
// at handleDelivery itself.
//
// Starting from the roots — (*Mechanisms).deliverInvocation,
// deliverResponse, deliverVotingResponse, observeResponse,
// deliverGatewayControl and observe, any function passed to
// (*Mechanisms).SetObserver, and any function whose declaration carries
// a "gwlint:eventloop" directive comment — the analyzer walks the
// static call graph of the package under analysis (internal/analysis/
// callgraph) and reports:
//
//   - time.Sleep;
//   - (*sync.RWMutex).Lock — the directory write lock; RLock and plain
//     (*sync.Mutex).Lock are allowed, the sharded tables take short
//     leaf-level mutex sections by design;
//   - (*sync.WaitGroup).Wait and (*sync.Cond).Wait;
//   - network sends (net dials/listens, memnet/udpnet Send, Broadcast);
//   - channel sends, unless the send is the comm case of a select with
//     a default clause, or every make site for that channel in the
//     package has a constant capacity greater than zero (a buffered
//     handoff such as pendingCall.ch cannot block its single producer).
//
// Code launched with go inside a reachable function runs off the loop
// and is skipped. Dynamic calls (interface methods, function values)
// cannot be resolved statically and are trusted; the blocking set is
// made of leaf operations precisely so the important cases need no
// callee bodies.
package looplock

import (
	"go/ast"

	"eternalgw/internal/analysis"
	"eternalgw/internal/analysis/callgraph"
)

// defaultRoots are the datapath handlers dispatched by
// replication.(*Mechanisms).handleDelivery under the read lock, plus
// the totem fast-path send hooks that run directly on the ring's event
// loop (a blocking call there stalls ordering for the whole ring).
var defaultRoots = map[string]bool{
	"eternalgw/internal/replication.Mechanisms.deliverInvocation":     true,
	"eternalgw/internal/replication.Mechanisms.deliverResponse":       true,
	"eternalgw/internal/replication.Mechanisms.deliverVotingResponse": true,
	"eternalgw/internal/replication.Mechanisms.observeResponse":       true,
	"eternalgw/internal/replication.Mechanisms.deliverGatewayControl": true,
	"eternalgw/internal/replication.Mechanisms.observe":               true,
	"eternalgw/internal/totem.Node.forwardPending":                    true,
	"eternalgw/internal/totem.Node.leaderOrderPending":                true,
}

// setObserverKey is the registration point whose function argument runs
// on the loop.
const setObserverKey = "eternalgw/internal/replication.Mechanisms.SetObserver"

// blockingCalls maps callee keys to what to call them in the report.
var blockingCalls = map[string]string{
	"time.Sleep":          "time.Sleep",
	"sync.RWMutex.Lock":   "write-Lock of a sync.RWMutex (the directory lock)",
	"sync.WaitGroup.Wait": "sync.WaitGroup.Wait",
	"sync.Cond.Wait":      "sync.Cond.Wait",
	"net.Dial":            "net.Dial",
	"net.DialTimeout":     "net.DialTimeout",
	"net.Listen":          "net.Listen",
	"net.ListenUDP":       "net.ListenUDP",
	"net.ListenPacket":    "net.ListenPacket",

	"eternalgw/internal/memnet.Endpoint.Send":      "memnet send",
	"eternalgw/internal/memnet.Endpoint.Broadcast": "memnet broadcast",
	"eternalgw/internal/udpnet.Endpoint.Broadcast": "udpnet broadcast",
	"eternalgw/internal/udpnet.Listen":             "udpnet.Listen",
}

var Analyzer = &analysis.Analyzer{
	Name: "looplock",
	Doc:  "rejects blocking calls reachable from the replication event loop's datapath dispatch",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	g := callgraph.New(pass.Files, pass.TypesInfo)
	chans := g.Chans()

	roots := g.FuncsByKey(defaultRoots)
	roots = append(roots, g.DirectiveRoots("eventloop")...)
	// Anything registered with SetObserver runs on the loop, whichever
	// package registers it.
	roots = append(roots, g.RegisteredArgs(setObserverKey)...)

	// safeSends are send statements that are comm cases of a select with
	// a default clause: non-blocking by construction.
	safeSends := make(map[*ast.SendStmt]bool)

	g.Walk(roots, &callgraph.Walk{
		FollowGoBodies: false,
		Node: func(n ast.Node, path string) bool {
			switch n := n.(type) {
			case *ast.SelectStmt:
				hasDefault := false
				for _, cl := range n.Body.List {
					if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
						hasDefault = true
					}
				}
				if hasDefault {
					for _, cl := range n.Body.List {
						if cc, ok := cl.(*ast.CommClause); ok {
							if s, ok := cc.Comm.(*ast.SendStmt); ok {
								safeSends[s] = true
							}
						}
					}
					return true
				}
				// A select without default can wait indefinitely.
				pass.Reportf(n.Pos(),
					"select without default may block the replication event loop (reachable via %s)", path)
				return false
			case *ast.SendStmt:
				if !safeSends[n] && !chans.ProvablyBuffered(n.Chan) {
					pass.Reportf(n.Pos(),
						"channel send may block the replication event loop (reachable via %s); use a buffered channel or select with default", path)
				}
				return true
			case *ast.CallExpr:
				key := analysis.FuncKey(analysis.Callee(pass.TypesInfo, n))
				if what, ok := blockingCalls[key]; ok {
					pass.Reportf(n.Pos(),
						"%s on the replication event loop (reachable via %s)", what, path)
				}
				return true
			}
			return true
		},
	})
	return nil
}
