// Package looplock rejects blocking operations reachable from the
// replication event loop's datapath dispatch.
//
// The event loop (replication/loop.go run → handleDelivery) is the
// gateway's only consumer of totem deliveries: one blocked callback
// stalls every ring. The datapath header kinds (invocations, responses,
// voting responses, observer notifications, gateway control) are
// dispatched under a read lock and must stay wait-free; only the rare
// membership/state-transfer kinds may take the directory write lock,
// which is why the analyzer roots at the datapath handlers rather than
// at handleDelivery itself.
//
// Starting from the roots — (*Mechanisms).deliverInvocation,
// deliverResponse, deliverVotingResponse, observeResponse,
// deliverGatewayControl and observe, any function passed to
// (*Mechanisms).SetObserver, and any function whose declaration carries
// a "gwlint:eventloop" directive comment — the analyzer walks the
// static call graph of the package under analysis and reports:
//
//   - time.Sleep;
//   - (*sync.RWMutex).Lock — the directory write lock; RLock and plain
//     (*sync.Mutex).Lock are allowed, the sharded tables take short
//     leaf-level mutex sections by design;
//   - (*sync.WaitGroup).Wait and (*sync.Cond).Wait;
//   - network sends (net dials/listens, memnet/udpnet Send, Broadcast);
//   - channel sends, unless the send is the comm case of a select with
//     a default clause, or every make site for that channel in the
//     package has a constant capacity greater than zero (a buffered
//     handoff such as pendingCall.ch cannot block its single producer).
//
// Code launched with go inside a reachable function runs off the loop
// and is skipped. Dynamic calls (interface methods, function values)
// cannot be resolved statically and are trusted; the blocking set is
// made of leaf operations precisely so the important cases need no
// callee bodies.
package looplock

import (
	"go/ast"
	"go/types"
	"strings"

	"eternalgw/internal/analysis"
)

// defaultRoots are the datapath handlers dispatched by
// replication.(*Mechanisms).handleDelivery under the read lock, plus
// the totem fast-path send hooks that run directly on the ring's event
// loop (a blocking call there stalls ordering for the whole ring).
var defaultRoots = map[string]bool{
	"eternalgw/internal/replication.Mechanisms.deliverInvocation":    true,
	"eternalgw/internal/replication.Mechanisms.deliverResponse":      true,
	"eternalgw/internal/replication.Mechanisms.deliverVotingResponse": true,
	"eternalgw/internal/replication.Mechanisms.observeResponse":      true,
	"eternalgw/internal/replication.Mechanisms.deliverGatewayControl": true,
	"eternalgw/internal/replication.Mechanisms.observe":              true,
	"eternalgw/internal/totem.Node.forwardPending":                   true,
	"eternalgw/internal/totem.Node.leaderOrderPending":               true,
}

// setObserverKey is the registration point whose function argument runs
// on the loop.
const setObserverKey = "eternalgw/internal/replication.Mechanisms.SetObserver"

// blockingCalls maps callee keys to what to call them in the report.
var blockingCalls = map[string]string{
	"time.Sleep":          "time.Sleep",
	"sync.RWMutex.Lock":   "write-Lock of a sync.RWMutex (the directory lock)",
	"sync.WaitGroup.Wait": "sync.WaitGroup.Wait",
	"sync.Cond.Wait":      "sync.Cond.Wait",
	"net.Dial":            "net.Dial",
	"net.DialTimeout":     "net.DialTimeout",
	"net.Listen":          "net.Listen",
	"net.ListenUDP":       "net.ListenUDP",
	"net.ListenPacket":    "net.ListenPacket",

	"eternalgw/internal/memnet.Endpoint.Send":      "memnet send",
	"eternalgw/internal/memnet.Endpoint.Broadcast": "memnet broadcast",
	"eternalgw/internal/udpnet.Endpoint.Broadcast": "udpnet broadcast",
	"eternalgw/internal/udpnet.Listen":             "udpnet.Listen",
}

var Analyzer = &analysis.Analyzer{
	Name: "looplock",
	Doc:  "rejects blocking calls reachable from the replication event loop's datapath dispatch",
	Run:  run,
}

type checker struct {
	pass    *analysis.Pass
	decls   map[*types.Func]*ast.FuncDecl
	visited map[*types.Func]bool
	// bufferedKeys are channel storage locations (object, or struct
	// field) whose every make site in the package has constant cap > 0.
	buffered map[chanKey]bool
	unknown  map[chanKey]bool // make with unknown/zero cap seen
}

// chanKey identifies where a channel lives: a variable object, or a
// named struct field.
type chanKey struct {
	obj   types.Object // variable, when field == ""
	owner string       // TypeKey of the struct, for fields
	field string
}

func run(pass *analysis.Pass) error {
	c := &checker{
		pass:     pass,
		decls:    make(map[*types.Func]*ast.FuncDecl),
		visited:  make(map[*types.Func]bool),
		buffered: make(map[chanKey]bool),
		unknown:  make(map[chanKey]bool),
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					c.decls[fn] = fd
				}
			}
		}
	}
	c.collectMakes()

	roots := c.findRoots()
	for _, fn := range roots {
		c.visit(fn, fn.Name())
	}
	return nil
}

// findRoots resolves the loop entry points present in this package.
func (c *checker) findRoots() []*types.Func {
	var roots []*types.Func
	seen := map[*types.Func]bool{}
	add := func(fn *types.Func) {
		if fn != nil && !seen[fn] && c.decls[fn] != nil {
			seen[fn] = true
			roots = append(roots, fn)
		}
	}
	for fn := range c.decls {
		if defaultRoots[analysis.FuncKey(fn)] {
			add(fn)
		}
	}
	for obj, ds := range analysis.FuncDirectives(c.pass.Files, c.pass.TypesInfo) {
		if analysis.HasDirective(ds, "eventloop") {
			if fn, ok := obj.(*types.Func); ok {
				add(fn)
			}
		}
	}
	// Anything registered with SetObserver runs on the loop, whichever
	// package registers it.
	for _, f := range c.pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if analysis.FuncKey(analysis.Callee(c.pass.TypesInfo, call)) != setObserverKey {
				return true
			}
			for _, arg := range call.Args {
				switch a := ast.Unparen(arg).(type) {
				case *ast.Ident:
					if fn, ok := c.pass.TypesInfo.Uses[a].(*types.Func); ok {
						add(fn)
					}
				case *ast.SelectorExpr:
					if fn, ok := c.pass.TypesInfo.Uses[a.Sel].(*types.Func); ok {
						add(fn)
					}
				}
			}
			return true
		})
	}
	return roots
}

// visit walks one reachable function, reporting blocking operations and
// following same-package static calls.
func (c *checker) visit(fn *types.Func, path string) {
	if c.visited[fn] {
		return
	}
	c.visited[fn] = true
	fd := c.decls[fn]
	if fd == nil {
		return
	}
	c.walk(fd.Body, path, nil)
}

// walk recursively inspects stmts. safeSends holds the send statements
// that are comm cases of a select with a default clause.
func (c *checker) walk(n ast.Node, path string, safeSends map[*ast.SendStmt]bool) {
	if n == nil {
		return
	}
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			// The spawned goroutine runs off the loop; evaluating the
			// call's arguments happens on it, so still look at those.
			for _, a := range n.Call.Args {
				c.walk(a, path, safeSends)
			}
			return false
		case *ast.SelectStmt:
			hasDefault := false
			for _, cl := range n.Body.List {
				if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if hasDefault {
				inner := make(map[*ast.SendStmt]bool, len(safeSends)+2)
				for k := range safeSends {
					inner[k] = true
				}
				for _, cl := range n.Body.List {
					if cc, ok := cl.(*ast.CommClause); ok {
						if s, ok := cc.Comm.(*ast.SendStmt); ok {
							inner[s] = true
						}
					}
				}
				for _, cl := range n.Body.List {
					c.walk(cl, path, inner)
				}
				return false
			}
			// A select without default can wait indefinitely.
			c.pass.Reportf(n.Pos(),
				"select without default may block the replication event loop (reachable via %s)", path)
			return false
		case *ast.SendStmt:
			if !safeSends[n] && !c.provablyBuffered(n.Chan) {
				c.pass.Reportf(n.Pos(),
					"channel send may block the replication event loop (reachable via %s); use a buffered channel or select with default", path)
			}
			return true
		case *ast.CallExpr:
			callee := analysis.Callee(c.pass.TypesInfo, n)
			if callee == nil {
				return true
			}
			key := analysis.FuncKey(callee)
			if what, ok := blockingCalls[key]; ok {
				c.pass.Reportf(n.Pos(),
					"%s on the replication event loop (reachable via %s)", what, path)
				return true
			}
			if next := c.decls[callee]; next != nil && !c.visited[callee] {
				c.visited[callee] = true
				c.walk(next.Body, path+" → "+callee.Name(), nil)
			}
			return true
		}
		return true
	})
}

// collectMakes records, for every channel storage location assigned in
// the package, whether all its make sites carry a constant capacity > 0.
func (c *checker) collectMakes() {
	note := func(key chanKey, buffered bool) {
		if buffered && !c.unknown[key] {
			c.buffered[key] = true
		} else {
			c.unknown[key] = true
			delete(c.buffered, key)
		}
	}
	for _, f := range c.pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i, rhs := range n.Rhs {
					if ok, buffered := c.makeChan(rhs); ok {
						if key, ok := c.keyFor(n.Lhs[i]); ok {
							note(key, buffered)
						}
					}
				}
			case *ast.CompositeLit:
				for _, el := range n.Elts {
					kv, ok := el.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					if ok, buffered := c.makeChan(kv.Value); ok {
						if id, ok := kv.Key.(*ast.Ident); ok {
							if owner := analysis.TypeKey(c.pass.TypesInfo.TypeOf(n)); owner != "" {
								note(chanKey{owner: owner, field: id.Name}, buffered)
							}
						}
					}
				}
			}
			return true
		})
	}
}

// makeChan reports whether e is make(chan ...) and whether its capacity
// is a constant greater than zero.
func (c *checker) makeChan(e ast.Expr) (isMake, buffered bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false, false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false, false
	}
	if b, ok := c.pass.TypesInfo.Uses[id].(*types.Builtin); !ok || b.Name() != "make" {
		return false, false
	}
	if len(call.Args) == 0 {
		return false, false
	}
	if _, ok := c.pass.TypesInfo.TypeOf(call.Args[0]).Underlying().(*types.Chan); !ok {
		return false, false
	}
	if len(call.Args) < 2 {
		return true, false
	}
	tv, ok := c.pass.TypesInfo.Types[call.Args[1]]
	if !ok || tv.Value == nil {
		return true, false
	}
	return true, constIntPositive(tv.Value.String())
}

func constIntPositive(s string) bool {
	s = strings.TrimSpace(s)
	return s != "" && s != "0" && !strings.HasPrefix(s, "-")
}

// keyFor resolves a channel storage location for an lvalue or channel
// expression.
func (c *checker) keyFor(e ast.Expr) (chanKey, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := c.pass.TypesInfo.Defs[e]
		if obj == nil {
			obj = c.pass.TypesInfo.Uses[e]
		}
		if obj == nil {
			return chanKey{}, false
		}
		return chanKey{obj: obj}, true
	case *ast.SelectorExpr:
		owner := analysis.TypeKey(c.pass.TypesInfo.TypeOf(e.X))
		if owner == "" {
			return chanKey{}, false
		}
		return chanKey{owner: owner, field: e.Sel.Name}, true
	}
	return chanKey{}, false
}

// provablyBuffered reports whether every make site seen for ch's storage
// location had a constant positive capacity.
func (c *checker) provablyBuffered(ch ast.Expr) bool {
	key, ok := c.keyFor(ch)
	if !ok {
		return false
	}
	return c.buffered[key] && !c.unknown[key]
}
