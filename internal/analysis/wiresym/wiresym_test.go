package wiresym_test

import (
	"strings"
	"testing"

	"eternalgw/internal/analysis/analysistest"
	"eternalgw/internal/analysis/wiresym"
)

func TestWireSym(t *testing.T) {
	analysistest.Run(t, wiresym.Analyzer, "wire")
}

// TestWireSymRegress replays the PR 7 decodeAck silent-truncation bug
// against the real cdr types.
func TestWireSymRegress(t *testing.T) {
	analysistest.Run(t, wiresym.Analyzer, "wireregress")
}

const wiresymGood = `package m

import (
	"fmt"

	"eternalgw/internal/cdr"
)

func encodeEntry(w *cdr.Writer, id uint32, name string) {
	w.WriteULong(id)
	w.WriteString(name)
}

func decodeEntry(r *cdr.Reader) (uint32, string, error) {
	id := r.ReadULong()
	name := r.ReadString()
	return id, name, r.Err()
}

func decodeTable(r *cdr.Reader) ([]string, error) {
	n := r.ReadULong()
	if r.Err() != nil || int(n) > r.Remaining()/4 {
		return nil, fmt.Errorf("m: bad count %d", n)
	}
	out := make([]string, 0, n)
	for i := uint32(0); i < n; i++ {
		out = append(out, r.ReadString())
	}
	return out, r.Err()
}
`

// TestWireSymMutationAsymmetry transposes two encoder writes in a
// known-good codec pair and proves the symmetry check fires on exactly
// that change.
func TestWireSymMutationAsymmetry(t *testing.T) {
	if ds := analysistest.Diagnostics(t, wiresym.Analyzer, "wiresym_good", wiresymGood); len(ds) != 0 {
		t.Fatalf("good snippet: unexpected diagnostics %v", ds)
	}

	mutant := strings.Replace(wiresymGood, "w.WriteULong(id)\n\tw.WriteString(name)",
		"w.WriteString(name)\n\tw.WriteULong(id)", 1)
	ds := analysistest.Diagnostics(t, wiresym.Analyzer, "wiresym_swapped", mutant)
	if len(ds) != 1 || !strings.Contains(ds[0].Message, "writes a different wire sequence") {
		t.Fatalf("mutant (transposed writes): want one symmetry diagnostic, got %v", ds)
	}
}

// TestWireSymMutationGuard deletes the hostile-count guard and proves
// the bounds check fires on exactly that change.
func TestWireSymMutationGuard(t *testing.T) {
	mutant := strings.Replace(wiresymGood, `	if r.Err() != nil || int(n) > r.Remaining()/4 {
		return nil, fmt.Errorf("m: bad count %d", n)
	}
`, "", 1)
	mutant = strings.Replace(mutant, "\"fmt\"\n\n\t", "", 1)
	ds := analysistest.Diagnostics(t, wiresym.Analyzer, "wiresym_unguarded", mutant)
	if len(ds) != 1 || !strings.Contains(ds[0].Message, "unguarded wire count") {
		t.Fatalf("mutant (guard deleted): want one unguarded-count diagnostic, got %v", ds)
	}
}
