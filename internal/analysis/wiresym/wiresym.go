// Package wiresym checks encode/decode symmetry and hostile-length
// discipline for the CDR wire codecs (totem, replication, GIOP).
//
// The message-logging literature treats a logged record's encoder and
// decoder as one artifact: if they disagree about the field order, the
// divergence shows up not as a parse error but as silently transposed
// state on replay. PR 7's decodeAck truncation was exactly this class —
// the decoder clamped a hostile count and returned a syntactically
// valid, semantically wrong message. This analyzer makes both halves of
// that bug class static:
//
// Symmetry. For every decodeX (or DecodeX) function using cdr.Reader
// operations, the analyzer extracts the sequence of wire operations
// (octet, ulong, string, octetseq, …) along each execution path —
// branches fork the path, loops contribute a rep(...) marker, error
// returns discard the path — and requires that some successful decoder
// path equals some path of the matching encoder (encodeX by name, or
// any encoder in the package for split forms like encodeRegular's
// packed branch feeding decodePacked). An encoder may write one leading
// octet the decoder does not read: the kind byte consumed by the
// dispatcher. Helpers that carry the writer/reader (writeServiceContexts
// / readServiceContexts) become paired sub-markers by stripped name; a
// function whose operations cannot be extracted faithfully (dynamic
// codec calls, encapsulation closures) is skipped rather than guessed
// at.
//
// Hostile lengths. A count read from the wire (ReadULong/ReadULongLong)
// that sizes a make() must be guarded against a hostile value before
// the allocation, and the guard must reject or clamp — not skip. A
// guard is an if statement mentioning the count and Remaining(); one
// that returns (the decodeAck shape) or reassigns the count (the
// readServiceContexts clamp) is accepted. A guard whose body contains
// the allocation itself silently skips the fields on a bad count and
// decodes a plausible but wrong message — reported. A make with no
// guard at all is an attacker-sized allocation — reported. Counts that
// only bound append loops allocate in step with real input and need no
// guard.
package wiresym

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"eternalgw/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "wiresym",
	Doc:  "checks encoder/decoder wire-operation symmetry and hostile-length guards in CDR codecs",
	Run:  run,
}

const cdrPath = "eternalgw/internal/cdr"

// ops maps cdr method keys to wire-operation names shared by both sides.
var ops = map[string]string{
	cdrPath + ".Writer.WriteOctet":     "octet",
	cdrPath + ".Writer.WriteBool":      "bool",
	cdrPath + ".Writer.WriteUShort":    "ushort",
	cdrPath + ".Writer.WriteShort":     "ushort",
	cdrPath + ".Writer.WriteULong":     "ulong",
	cdrPath + ".Writer.WriteLong":      "ulong",
	cdrPath + ".Writer.WriteULongLong": "ulonglong",
	cdrPath + ".Writer.WriteLongLong":  "ulonglong",
	cdrPath + ".Writer.WriteFloat":     "float",
	cdrPath + ".Writer.WriteDouble":    "double",
	cdrPath + ".Writer.WriteString":    "string",
	cdrPath + ".Writer.WriteOctets":    "octets",
	cdrPath + ".Writer.WriteOctetSeq":  "octetseq",
	cdrPath + ".Writer.Align":          "align",

	cdrPath + ".Reader.ReadOctet":     "octet",
	cdrPath + ".Reader.ReadBool":      "bool",
	cdrPath + ".Reader.ReadUShort":    "ushort",
	cdrPath + ".Reader.ReadShort":     "ushort",
	cdrPath + ".Reader.ReadULong":     "ulong",
	cdrPath + ".Reader.ReadLong":      "ulong",
	cdrPath + ".Reader.ReadULongLong": "ulonglong",
	cdrPath + ".Reader.ReadLongLong":  "ulonglong",
	cdrPath + ".Reader.ReadFloat":     "float",
	cdrPath + ".Reader.ReadDouble":    "double",
	cdrPath + ".Reader.ReadString":    "string",
	cdrPath + ".Reader.ReadOctets":    "octets",
	cdrPath + ".Reader.ReadOctetSeq":  "octetseq",
	cdrPath + ".Reader.Align":         "align",
}

// opaque are cdr calls whose contents this analyzer cannot linearize.
var opaque = map[string]bool{
	cdrPath + ".Writer.WriteEncapsulation": true,
	cdrPath + ".Reader.ReadEncapsulation":  true,
}

const maxTraces = 32

func run(pass *analysis.Pass) error {
	encoders := make(map[string]*codecFunc) // by stripped lowercase suffix
	decoders := make(map[string]*codecFunc)
	var encOrder, decOrder []string

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			role, suffix := codecName(fd.Name.Name)
			if role == "" {
				// Codec helpers that carry the reader still allocate
				// from wire counts; hold them to the guard discipline.
				if usesReader(pass, fd.Body) {
					checkBounds(pass, &codecFunc{name: fd.Name.Name, body: fd.Body})
				}
				continue
			}
			cf := extract(pass, fd)
			if cf == nil {
				continue // no wire operations at all
			}
			cf.suffix = suffix
			if role == "encode" {
				if _, dup := encoders[suffix]; !dup {
					encoders[suffix] = cf
					encOrder = append(encOrder, suffix)
				}
			} else {
				if _, dup := decoders[suffix]; !dup {
					decoders[suffix] = cf
					decOrder = append(decOrder, suffix)
				}
			}
		}
	}

	for _, suffix := range decOrder {
		dec := decoders[suffix]
		checkBounds(pass, dec)
		if dec.bad || len(dec.traces) == 0 {
			continue
		}
		// Every encoder is a match candidate — split forms like
		// encodeRegular's packed branch feed decodePacked — but a
		// mismatch is only reportable against a name-paired encoder; an
		// unpaired decoder may parse a format produced elsewhere.
		enc, paired := encoders[suffix]
		candidates := make([]*codecFunc, 0, len(encOrder))
		if paired {
			candidates = append(candidates, enc)
		}
		for _, s := range encOrder {
			if !paired || s != suffix {
				candidates = append(candidates, encoders[s])
			}
		}
		if !symmetric(dec, candidates) && paired {
			pass.Reportf(dec.pos,
				"%s reads (%s) but %s writes a different wire sequence; encoder and decoder must touch the same fields in the same order",
				dec.name, strings.Join(longest(dec.traces), " "), enc.name)
		}
	}
	return nil
}

// usesReader reports whether the body performs any cdr.Reader data op.
func usesReader(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			key := analysis.FuncKey(analysis.Callee(pass.TypesInfo, call))
			if _, ok := ops[key]; ok && strings.Contains(key, ".Reader.") {
				found = true
			}
		}
		return !found
	})
	return found
}

// longest picks the most detailed trace for the report.
func longest(traces [][]string) []string {
	var best []string
	for _, t := range traces {
		if len(t) > len(best) {
			best = t
		}
	}
	return best
}

// codecName splits a codec function name into role and stripped suffix.
func codecName(name string) (role, suffix string) {
	lower := strings.ToLower(name)
	switch {
	case strings.HasPrefix(lower, "encode"):
		return "encode", lower[len("encode"):]
	case strings.HasPrefix(lower, "decode"):
		return "decode", lower[len("decode"):]
	}
	return "", ""
}

// subName strips the directional prefix off a codec helper, pairing
// writeServiceContexts with readServiceContexts.
func subName(name string) string {
	lower := strings.ToLower(name)
	for _, p := range []string{"encode", "decode", "write", "read"} {
		if strings.HasPrefix(lower, p) && len(lower) > len(p) {
			return lower[len(p):]
		}
	}
	return lower
}

// codecFunc is one encoder or decoder with its extracted traces.
type codecFunc struct {
	name   string
	suffix string
	pos    token.Pos
	body   *ast.BlockStmt
	traces [][]string // successful execution paths, op sequences
	bad    bool       // extraction hit something it cannot linearize
}

// symmetric reports whether some decoder trace matches some encoder
// trace, allowing the encoder one unread leading kind octet.
func symmetric(dec *codecFunc, encs []*codecFunc) bool {
	for _, enc := range encs {
		if enc.bad {
			return true // cannot compare faithfully: trust it
		}
		for _, e := range enc.traces {
			for _, d := range dec.traces {
				if len(d) == 0 {
					continue // dispatcher path
				}
				if seqEqual(d, e) {
					return true
				}
				if len(e) > 0 && e[0] == "octet" && seqEqual(d, e[1:]) {
					return true
				}
			}
		}
	}
	return false
}

func seqEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// --- trace extraction ---

type extractor struct {
	pass *analysis.Pass
	cf   *codecFunc
}

// extract linearizes a codec body into per-path op sequences. Returns
// nil when the function performs no wire operations (pure dispatchers,
// size hints).
func extract(pass *analysis.Pass, fd *ast.FuncDecl) *codecFunc {
	cf := &codecFunc{name: fd.Name.Name, pos: fd.Pos(), body: fd.Body}
	x := &extractor{pass: pass, cf: cf}
	traces := x.stmts(fd.Body.List, []trace{{}})
	any := false
	for _, t := range traces {
		if t.bad {
			continue
		}
		if len(t.ops) > 0 {
			any = true
		}
		cf.traces = append(cf.traces, t.ops)
	}
	if !any && !cf.bad {
		return nil
	}
	return cf
}

type trace struct {
	ops  []string
	done bool // hit a successful return
	bad  bool // hit an error return: not a wire-visible path
}

func (x *extractor) stmts(list []ast.Stmt, ts []trace) []trace {
	for _, s := range list {
		ts = x.stmt(s, ts)
		if len(ts) > maxTraces {
			ts = ts[:maxTraces]
		}
	}
	return ts
}

func (x *extractor) stmt(s ast.Stmt, ts []trace) []trace {
	switch s := s.(type) {
	case nil:
		return ts
	case *ast.BlockStmt:
		return x.stmts(s.List, ts)
	case *ast.LabeledStmt:
		return x.stmt(s.Stmt, ts)
	case *ast.IfStmt:
		ts = x.scan(s.Init, ts)
		ts = x.scan(s.Cond, ts)
		taken := x.stmts(s.Body.List, cloneTraces(ts))
		var other []trace
		if s.Else != nil {
			other = x.stmt(s.Else, cloneTraces(ts))
		} else {
			other = ts
		}
		return append(taken, other...)
	case *ast.ForStmt:
		ts = x.scan(s.Init, ts)
		if s.Cond != nil {
			ts = x.scan(s.Cond, ts)
		}
		return x.loop(s.Body, ts)
	case *ast.RangeStmt:
		ts = x.scan(s.X, ts)
		return x.loop(s.Body, ts)
	case *ast.SwitchStmt:
		ts = x.scan(s.Init, ts)
		if s.Tag != nil {
			ts = x.scan(s.Tag, ts)
		}
		return x.cases(s.Body, ts)
	case *ast.TypeSwitchStmt:
		ts = x.scan(s.Init, ts)
		return x.cases(s.Body, ts)
	case *ast.ReturnStmt:
		ts = x.scan(s, ts)
		errReturn := returnsError(x.pass.TypesInfo, s)
		out := cloneTraces(ts)
		for i := range out {
			if !out[i].done {
				out[i].done = true
				out[i].bad = out[i].bad || errReturn
			}
		}
		return out
	case *ast.DeferStmt, *ast.GoStmt:
		return ts
	case *ast.SelectStmt:
		x.cf.bad = true
		return ts
	default:
		return x.scan(s, ts)
	}
}

// cases forks one branch per case clause plus the no-match fallthrough.
func (x *extractor) cases(body *ast.BlockStmt, ts []trace) []trace {
	out := cloneTraces(ts) // no case taken
	for _, cl := range body.List {
		if cc, ok := cl.(*ast.CaseClause); ok {
			out = append(out, x.stmts(cc.Body, cloneTraces(ts))...)
		}
	}
	return out
}

// loop appends a rep(...) marker holding the body's linearized ops.
func (x *extractor) loop(body *ast.BlockStmt, ts []trace) []trace {
	inner := x.stmts(body.List, []trace{{}})
	// A loop body that itself branches is folded to its longest path:
	// repetition counts are dynamic anyway, the marker only fixes the
	// per-element shape.
	var best []string
	for _, t := range inner {
		if t.bad {
			continue
		}
		if len(t.ops) > len(best) {
			best = t.ops
		}
	}
	if len(best) == 0 {
		return ts
	}
	marker := "rep(" + strings.Join(best, " ") + ")"
	for i := range ts {
		if !ts[i].done {
			ts[i].ops = append(append([]string(nil), ts[i].ops...), marker)
		}
	}
	return ts
}

// scan appends the wire ops found in a statement or expression, in
// source order, to every live trace.
func (x *extractor) scan(n ast.Node, ts []trace) []trace {
	if n == nil {
		return ts
	}
	var found []string
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			x.cf.bad = true
			return false
		case *ast.CallExpr:
			key := analysis.FuncKey(analysis.Callee(x.pass.TypesInfo, n))
			if op, ok := ops[key]; ok {
				found = append(found, op)
				return true
			}
			if opaque[key] {
				x.cf.bad = true
				return true
			}
			if sub, ok := x.subCall(n); ok {
				found = append(found, sub)
			}
			return true
		}
		return true
	})
	if len(found) == 0 {
		return ts
	}
	for i := range ts {
		if !ts[i].done {
			ts[i].ops = append(append([]string(nil), ts[i].ops...), found...)
		}
	}
	return ts
}

// subCall classifies a call that carries the writer or reader onward: a
// same-package helper becomes a paired sub-marker, anything else makes
// the function incomparable.
func (x *extractor) subCall(call *ast.CallExpr) (string, bool) {
	carries := false
	for _, a := range call.Args {
		if t := x.pass.TypesInfo.TypeOf(a); t != nil {
			if key := analysis.TypeKey(t); key == cdrPath+".Writer" || key == cdrPath+".Reader" {
				carries = true
			}
		}
	}
	if !carries {
		return "", false
	}
	callee := analysis.Callee(x.pass.TypesInfo, call)
	if callee == nil || callee.Pkg() == nil || callee.Pkg() != x.pass.Pkg {
		x.cf.bad = true
		return "", false
	}
	return "sub:" + subName(callee.Name()), true
}

// returnsError reports whether the return hands back a freshly built
// error (fmt.Errorf, errors.New): a failed decode, not a wire path.
func returnsError(info *types.Info, ret *ast.ReturnStmt) bool {
	for _, res := range ret.Results {
		if call, ok := ast.Unparen(res).(*ast.CallExpr); ok {
			switch analysis.FuncKey(analysis.Callee(info, call)) {
			case "fmt.Errorf", "errors.New":
				return true
			}
		}
	}
	return false
}

func cloneTraces(ts []trace) []trace {
	out := make([]trace, len(ts))
	for i, t := range ts {
		out[i] = trace{ops: append([]string(nil), t.ops...), done: t.done, bad: t.bad}
	}
	return out
}

// --- hostile-length guards ---

// checkBounds enforces the count-guard discipline on one decoder.
func checkBounds(pass *analysis.Pass, dec *codecFunc) {
	info := pass.TypesInfo

	// Count variables: assigned from ReadULong/ReadULongLong, directly
	// or through conversions and one-level copies.
	counts := make(map[types.Object]bool)
	ast.Inspect(dec.body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			id, ok := as.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			if isCountSource(info, rhs, counts) {
				if obj := info.Defs[id]; obj != nil {
					counts[obj] = true
				} else if obj := info.Uses[id]; obj != nil {
					counts[obj] = true
				}
			}
		}
		return true
	})
	if len(counts) == 0 {
		return
	}

	// Guards: if statements mentioning a count and Remaining().
	type guard struct {
		stmt     *ast.IfStmt
		rejects  bool // body returns
		clamps   map[types.Object]bool
		mentions map[types.Object]bool
	}
	var guards []*guard
	ast.Inspect(dec.body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		head := []ast.Node{}
		if ifs.Init != nil {
			head = append(head, ifs.Init)
		}
		head = append(head, ifs.Cond)
		mentions := make(map[types.Object]bool)
		remaining := false
		for _, h := range head {
			ast.Inspect(h, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.Ident:
					if obj := info.Uses[n]; obj != nil && counts[obj] {
						mentions[obj] = true
					}
				case *ast.CallExpr:
					if analysis.FuncKey(analysis.Callee(info, n)) == cdrPath+".Reader.Remaining" {
						remaining = true
					}
				}
				return true
			})
		}
		if !remaining || len(mentions) == 0 {
			return true
		}
		gd := &guard{stmt: ifs, mentions: mentions, clamps: make(map[types.Object]bool)}
		ast.Inspect(ifs.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ReturnStmt:
				gd.rejects = true
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						if obj := info.Uses[id]; obj != nil && counts[obj] {
							gd.clamps[obj] = true
						}
					}
				}
			}
			return true
		})
		guards = append(guards, gd)
		return true
	})

	// Every make() sized by a count must sit after a rejecting or
	// clamping guard — never inside the guard, never unguarded.
	ast.Inspect(dec.body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok {
			return true
		}
		if b, ok := info.Uses[id].(*types.Builtin); !ok || b.Name() != "make" {
			return true
		}
		var sized types.Object
		for _, a := range call.Args[1:] {
			if obj := countIdent(info, a, counts); obj != nil {
				sized = obj
			}
		}
		if sized == nil {
			return true
		}
		inside, before := false, false
		for _, gd := range guards {
			if !gd.mentions[sized] {
				continue
			}
			if gd.stmt.Body.Pos() <= call.Pos() && call.Pos() < gd.stmt.Body.End() {
				inside = true
				continue
			}
			if gd.stmt.End() <= call.Pos() && (gd.rejects || gd.clamps[sized]) {
				before = true
			}
		}
		switch {
		case before:
		case inside:
			pass.Reportf(call.Pos(),
				"%s silently skips fields when the wire count fails its bounds check; reject the message with an error instead of decoding a truncated one", dec.name)
		default:
			pass.Reportf(call.Pos(),
				"%s sizes an allocation from an unguarded wire count; bound it against Remaining() before allocating", dec.name)
		}
		return true
	})
}

// isCountSource reports whether rhs reads a wire count or copies one.
func isCountSource(info *types.Info, rhs ast.Expr, counts map[types.Object]bool) bool {
	rhs = unwrapConversions(info, rhs)
	switch e := rhs.(type) {
	case *ast.CallExpr:
		switch analysis.FuncKey(analysis.Callee(info, e)) {
		case cdrPath + ".Reader.ReadULong", cdrPath + ".Reader.ReadULongLong":
			return true
		}
	case *ast.Ident:
		if obj := info.Uses[e]; obj != nil && counts[obj] {
			return true
		}
	}
	return false
}

// countIdent resolves an expression to a count variable, looking
// through conversions.
func countIdent(info *types.Info, e ast.Expr, counts map[types.Object]bool) types.Object {
	if id, ok := unwrapConversions(info, e).(*ast.Ident); ok {
		if obj := info.Uses[id]; obj != nil && counts[obj] {
			return obj
		}
	}
	return nil
}

// unwrapConversions strips int(x)-style conversions.
func unwrapConversions(info *types.Info, e ast.Expr) ast.Expr {
	for {
		e = ast.Unparen(e)
		call, ok := e.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return e
		}
		conv := false
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			if _, ok := info.Uses[fun].(*types.TypeName); ok {
				conv = true
			}
		case *ast.SelectorExpr:
			if _, ok := info.Uses[fun.Sel].(*types.TypeName); ok {
				conv = true
			}
		}
		if !conv {
			return e
		}
		e = call.Args[0]
	}
}
