// Package wireregress replays the PR 7 decodeAck bug against the real
// cdr types: the pre-fix decoder bounds-checked the nak count but
// guarded by skipping, so a truncated or hostile ack decoded
// "successfully" with an empty nak list — retransmission state silently
// dropped instead of an error. The fixed form (internal/totem/wire.go)
// rejects before allocating.
package wireregress

import (
	"fmt"

	"eternalgw/internal/cdr"
)

type ackMsg struct {
	RingID uint64
	Sender string
	Aru    uint64
	Nak    []uint64
}

func encodeAck(a ackMsg) []byte {
	w := cdr.NewWriterCap(cdr.BigEndian, 40+len(a.Sender)+8*len(a.Nak))
	w.WriteOctet(6)
	w.WriteULongLong(a.RingID)
	w.WriteString(a.Sender)
	w.WriteULongLong(a.Aru)
	w.WriteULong(uint32(len(a.Nak)))
	for _, s := range a.Nak {
		w.WriteULongLong(s)
	}
	return w.Bytes()
}

// decodeAck is the pre-fix decoder, verbatim in shape: the bounds check
// wraps the allocation instead of rejecting the message.
func decodeAck(r *cdr.Reader) (ackMsg, error) {
	var a ackMsg
	a.RingID = r.ReadULongLong()
	a.Sender = r.ReadString()
	a.Aru = r.ReadULongLong()
	n := r.ReadULong()
	if n > 0 && int(n) <= r.Remaining()/8 {
		a.Nak = make([]uint64, 0, n) // want `decodeAck silently skips fields when the wire count fails its bounds check`
		for i := uint32(0); i < n && r.Err() == nil; i++ {
			a.Nak = append(a.Nak, r.ReadULongLong())
		}
	}
	if err := r.Err(); err != nil {
		return ackMsg{}, fmt.Errorf("wireregress: decode ack: %w", err)
	}
	return a, nil
}
