// Package wire exercises the wiresym analyzer: encoder/decoder
// wire-sequence symmetry (with the one-leading-kind-octet dispatch
// allowance and paired read/write helpers) and the hostile-length guard
// discipline on counts that size allocations.
package wire

import (
	"fmt"

	"eternalgw/internal/cdr"
)

type record struct {
	id   uint32
	name string
}

// encodeRecord / decodeRecord agree on the wire sequence: silent.
func encodeRecord(w *cdr.Writer, r record) {
	w.WriteULong(r.id)
	w.WriteString(r.name)
}

func decodeRecord(rd *cdr.Reader) (record, error) {
	var r record
	r.id = rd.ReadULong()
	r.name = rd.ReadString()
	return r, rd.Err()
}

// encodeEvent writes name then id; decodeEvent reads them transposed —
// a syntactically valid decode of semantically wrong state.
func encodeEvent(w *cdr.Writer, r record) {
	w.WriteString(r.name)
	w.WriteULongLong(uint64(r.id))
}

func decodeEvent(rd *cdr.Reader) (record, error) { // want `decodeEvent reads \(ulonglong string\) but encodeEvent writes a different wire sequence`
	var r record
	r.id = uint32(rd.ReadULongLong())
	r.name = rd.ReadString()
	return r, rd.Err()
}

// encodeFrame carries a kind octet the dispatcher consumes before
// decodeFrame runs, and both halves share a read/write helper pair.
func encodeFrame(w *cdr.Writer, r record) {
	w.WriteOctet(1)
	writeBody(w, r)
}

func writeBody(w *cdr.Writer, r record) {
	w.WriteULong(r.id)
	w.WriteBool(true)
}

func decodeFrame(rd *cdr.Reader) (record, error) {
	var r record
	readBody(rd, &r)
	return r, rd.Err()
}

func readBody(rd *cdr.Reader, r *record) {
	r.id = rd.ReadULong()
	_ = rd.ReadBool()
}

// decodeList sizes an allocation straight from the wire: an attacker
// chooses the count.
func decodeList(rd *cdr.Reader) ([]uint32, error) {
	n := rd.ReadULong()
	out := make([]uint32, 0, n) // want `decodeList sizes an allocation from an unguarded wire count`
	for i := uint32(0); i < n; i++ {
		out = append(out, rd.ReadULong())
	}
	return out, rd.Err()
}

// decodeSkip guards, but by skipping: a bad count decodes a plausible,
// silently truncated message instead of an error.
func decodeSkip(rd *cdr.Reader) ([]uint32, error) {
	n := rd.ReadULong()
	var out []uint32
	if int(n) <= rd.Remaining()/4 {
		out = make([]uint32, 0, n) // want `decodeSkip silently skips fields when the wire count fails its bounds check`
		for i := uint32(0); i < n; i++ {
			out = append(out, rd.ReadULong())
		}
	}
	return out, rd.Err()
}

// decodeGuarded rejects a hostile count before allocating: the
// decodeAck shape after the PR 7 fix.
func decodeGuarded(rd *cdr.Reader) ([]uint32, error) {
	n := rd.ReadULong()
	if rd.Err() != nil || int(n) > rd.Remaining()/4 {
		return nil, fmt.Errorf("wire: bad count %d", n)
	}
	out := make([]uint32, 0, n)
	for i := uint32(0); i < n; i++ {
		out = append(out, rd.ReadULong())
	}
	return out, rd.Err()
}

// decodeClamped bounds the count instead: the readServiceContexts
// capacity-hint idiom.
func decodeClamped(rd *cdr.Reader) []uint32 {
	n := rd.ReadULong()
	if int(n) > rd.Remaining()/4 {
		n = uint32(rd.Remaining() / 4)
	}
	out := make([]uint32, 0, n)
	for i := uint32(0); i < n && rd.Err() == nil; i++ {
		out = append(out, rd.ReadULong())
	}
	return out
}

// decodeAppend never sizes an allocation from the count: append grows
// in step with real input, so no guard is demanded.
func decodeAppend(rd *cdr.Reader) ([]uint32, error) {
	n := rd.ReadULong()
	var out []uint32
	for i := uint32(0); i < n && rd.Err() == nil; i++ {
		out = append(out, rd.ReadULong())
	}
	return out, rd.Err()
}

// readPairs is a helper, not a named codec, but it carries the reader
// and allocates from a wire count: the guard discipline follows the
// reader, not the function name.
func readPairs(rd *cdr.Reader) map[uint32]uint32 {
	n := rd.ReadULong()
	m := make(map[uint32]uint32, n) // want `readPairs sizes an allocation from an unguarded wire count`
	for i := uint32(0); i < n && rd.Err() == nil; i++ {
		k := rd.ReadULong()
		m[k] = rd.ReadULong()
	}
	return m
}

// decodeAudited keeps an unguarded allocation deliberately (the payload
// is produced by a trusted in-process encoder); the allow carries the
// argument.
func decodeAudited(rd *cdr.Reader) ([]uint32, error) {
	n := rd.ReadULong()
	//lint:allow wiresym reader wraps an in-memory buffer produced by this process
	out := make([]uint32, 0, n)
	for i := uint32(0); i < n && rd.Err() == nil; i++ {
		out = append(out, rd.ReadULong())
	}
	return out, rd.Err()
}
