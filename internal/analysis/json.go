package analysis

import (
	"encoding/json"
	"go/token"
	"io"
	"sort"
)

// JSONDiagnostic is the machine-readable form of a finding, consumed by
// CI to emit GitHub Actions problem-matcher annotations.
type JSONDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// PrintJSON renders findings as a JSON array, sorted like
// PrintDiagnostics. The array is always emitted, empty included, so
// consumers can parse the output unconditionally.
func PrintJSON(w io.Writer, fset *token.FileSet, diags []Diagnostic) {
	out := make([]JSONDiagnostic, 0, len(diags))
	for _, d := range diags {
		p := fset.Position(d.Pos)
		out = append(out, JSONDiagnostic{
			File:     p.Filename,
			Line:     p.Line,
			Column:   p.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		if out[i].Line != out[j].Line {
			return out[i].Line < out[j].Line
		}
		return out[i].Message < out[j].Message
	})
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(out)
}
