// Package metric exercises the metricname analyzer's per-package rules
// against the real obs registry: prefix and charset conventions,
// single registration, and static resolvability of names — including
// the table-driven registration idiom, keyed and unkeyed.
package metric

import "eternalgw/internal/obs"

func direct(reg *obs.Registry) {
	reg.Counter("eternalgw_corpus_good_total", "a well-formed name", nil)
	reg.Gauge("corpus_unprefixed", "missing the module prefix", nil)           // want `does not start with "eternalgw_"`
	reg.Counter("eternalgw_Corpus_bad_total", "uppercase is not allowed", nil) // want `not lowercase`
	reg.Counter("eternalgw_corpus_twice_total", "registered here...", nil)
	reg.Counter("eternalgw_corpus_twice_total", "...and here again", nil) // want `registered more than once in this package`
}

type row struct {
	name string
	help string
	fn   func() uint64
}

func tables(reg *obs.Registry) {
	for _, c := range []row{
		{name: "eternalgw_corpus_keyed_total", help: "keyed row"},
		{name: "keyed_unprefixed_total", help: "keyed bad row"}, // want `does not start with "eternalgw_"`
	} {
		reg.CounterFunc(c.name, c.help, nil, c.fn)
	}
	for _, c := range []row{
		{"eternalgw_corpus_unkeyed_total", "unkeyed row", nil},
		{"unkeyed_unprefixed_total", "unkeyed bad row", nil}, // want `does not start with "eternalgw_"`
	} {
		reg.CounterFunc(c.name, c.help, nil, c.fn)
	}
}

// A name the analyzer cannot resolve statically is itself a finding.
func dynamic(reg *obs.Registry, name string) {
	reg.Counter(name, "dynamically named", nil) // want `not a resolvable string literal`
}

// The escape hatch works here like everywhere else.
func sanctioned(reg *obs.Registry, name string) {
	reg.Counter(name, "forwarded from a config file", nil) //lint:allow metricname bridge metric named by the operator's config
}
