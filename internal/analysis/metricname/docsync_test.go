package metricname_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"eternalgw/internal/analysis"
	"eternalgw/internal/analysis/metricname"
)

func moduleDir(t *testing.T) string {
	t.Helper()
	dir, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	for d := dir; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d
		}
		parent := filepath.Dir(d)
		if parent == d {
			t.Fatalf("no go.mod above %s", dir)
		}
		d = parent
	}
}

// TestDocSyncModuleClean is the drift gate for the real tree: every
// registered metric is documented in docs/OBSERVABILITY.md and every
// documented name is still registered. Add a metric without a doc row —
// or retire one and leave its row behind — and this fails.
func TestDocSyncModuleClean(t *testing.T) {
	l, pkgs, err := analysis.LoadModule(moduleDir(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range metricname.DocSync(l, pkgs) {
		t.Errorf("%s: %s", l.Fset.Position(d.Pos), d.Message)
	}
}

// TestDocSyncDrift seeds both drift directions and a module-wide
// duplicate against a synthetic module dir and checks each is caught.
func TestDocSyncDrift(t *testing.T) {
	l, _, err := analysis.LoadModule(moduleDir(t))
	if err != nil {
		t.Fatal(err)
	}

	srcDir := t.TempDir()
	write := func(name, src string) string {
		t.Helper()
		path := filepath.Join(srcDir, name)
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	one := write("one.go", `package one

import "eternalgw/internal/obs"

func register(reg *obs.Registry) {
	reg.Counter("eternalgw_drift_documented_total", "documented and registered", nil)
	reg.Counter("eternalgw_drift_undocumented_total", "registered but missing from the docs", nil)
}
`)
	two := write("two.go", `package two

import "eternalgw/internal/obs"

func register(reg *obs.Registry) {
	reg.Counter("eternalgw_drift_documented_total", "second registration of the same name", nil)
}
`)
	pkg1, err := l.CheckFiles("gwlint-testdata/driftone", []string{one})
	if err != nil {
		t.Fatal(err)
	}
	pkg2, err := l.CheckFiles("gwlint-testdata/drifttwo", []string{two})
	if err != nil {
		t.Fatal(err)
	}

	fakeModule := t.TempDir()
	if err := os.MkdirAll(filepath.Join(fakeModule, "docs"), 0o755); err != nil {
		t.Fatal(err)
	}
	doc := "| `eternalgw_drift_documented_total` | counter | fine |\n" +
		"| `eternalgw_drift_ghost_total` | counter | retired from code, row left behind |\n"
	if err := os.WriteFile(filepath.Join(fakeModule, "docs", "OBSERVABILITY.md"), []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	l.ModuleDir = fakeModule

	diags := metricname.DocSync(l, []*analysis.Package{pkg1, pkg2})
	wants := []string{
		`"eternalgw_drift_documented_total" registered more than once in the module`,
		`"eternalgw_drift_undocumented_total" is not documented`,
		`documents "eternalgw_drift_ghost_total", which no code registers`,
	}
	for _, want := range wants {
		found := false
		for _, d := range diags {
			if strings.Contains(d.Message, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no diagnostic containing %q in %v", want, messages(diags))
		}
	}
	if len(diags) != len(wants) {
		t.Errorf("got %d diagnostics %v, want %d", len(diags), messages(diags), len(wants))
	}
}

func messages(diags []analysis.Diagnostic) []string {
	var out []string
	for _, d := range diags {
		out = append(out, d.Message)
	}
	return out
}
