package metricname_test

import (
	"testing"

	"eternalgw/internal/analysis/analysistest"
	"eternalgw/internal/analysis/metricname"
)

func TestMetricName(t *testing.T) {
	analysistest.Run(t, metricname.Analyzer, "metric")
}
