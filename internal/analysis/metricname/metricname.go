// Package metricname enforces the repository's metric conventions: every
// series registered with obs.Registry is named eternalgw_<subsystem>_...
// in Prometheus-safe lowercase, is registered exactly once across the
// whole module, and appears in docs/OBSERVABILITY.md — and everything
// documented there still exists in code. The doc cross-reference runs in
// the module-mode driver (DocSync), because a single-package vettool unit
// cannot see the full registration set.
//
// Registration sites are direct string arguments to the Registry methods
// (Counter, Gauge, CounterFunc, GaugeFunc, Histogram). The table-driven
// idiom — a slice literal of {name, help} rows fed to the registry in a
// loop — is resolved by following the name argument's field back to the
// string literals in the same function's composite literals. A name the
// analyzer cannot resolve statically is itself a finding: an unreviewable
// metric name is how conventions rot.
package metricname

import (
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"

	"eternalgw/internal/analysis"
)

const (
	prefix  = "eternalgw_"
	docFile = "docs/OBSERVABILITY.md"
)

var registerMethods = map[string]bool{
	"eternalgw/internal/obs.Registry.Counter":     true,
	"eternalgw/internal/obs.Registry.Gauge":       true,
	"eternalgw/internal/obs.Registry.CounterFunc": true,
	"eternalgw/internal/obs.Registry.GaugeFunc":   true,
	"eternalgw/internal/obs.Registry.Histogram":   true,
}

var nameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

var Analyzer = &analysis.Analyzer{
	Name: "metricname",
	Doc:  "metric names follow the eternalgw_* convention, registered once, synced with docs/OBSERVABILITY.md",
	Run:  run,
}

// Metric is one statically resolved registration.
type Metric struct {
	Name string
	Pos  token.Pos
}

func run(pass *analysis.Pass) error {
	metrics, unresolved := Collect(pass.TypesInfo, pass.Files)
	for _, pos := range unresolved {
		pass.Report(pos, "metric name is not a resolvable string literal; name metrics statically so conventions stay checkable")
	}
	seen := make(map[string]token.Pos, len(metrics))
	for _, m := range metrics {
		if !strings.HasPrefix(m.Name, prefix) {
			pass.Reportf(m.Pos, "metric %q does not start with %q", m.Name, prefix)
		} else if !nameRE.MatchString(m.Name) {
			pass.Reportf(m.Pos, "metric %q is not lowercase [a-z0-9_] Prometheus form", m.Name)
		}
		if _, dup := seen[m.Name]; dup {
			pass.Reportf(m.Pos, "metric %q registered more than once in this package", m.Name)
		}
		seen[m.Name] = m.Pos
	}
	return nil
}

// Collect returns the metric registrations in the files, plus positions
// of name arguments that could not be resolved to string literals.
func Collect(info *types.Info, files []*ast.File) ([]Metric, []token.Pos) {
	var metrics []Metric
	var unresolved []token.Pos
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if !registerMethods[analysis.FuncKey(analysis.Callee(info, call))] || len(call.Args) == 0 {
					return true
				}
				name := call.Args[0]
				if s, ok := stringLit(info, name); ok {
					metrics = append(metrics, Metric{Name: s, Pos: name.Pos()})
					return true
				}
				// Table-driven: reg.CounterFunc(c.name, ...) inside a
				// range over a row-literal slice. Resolve c back to its
				// range statement and harvest the name field's string
				// literals from that statement's slice literal — and
				// only that one, so a function with several tables
				// counts each row exactly once.
				if sel, ok := ast.Unparen(name).(*ast.SelectorExpr); ok {
					if lit := rangeSource(info, fd.Body, sel); lit != nil {
						rows := harvestField(info, lit, sel.Sel.Name)
						if len(rows) > 0 {
							metrics = append(metrics, rows...)
							return true
						}
					}
				}
				unresolved = append(unresolved, name.Pos())
				return true
			})
		}
	}
	return metrics, unresolved
}

func stringLit(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return "", false
	}
	s := tv.Value.ExactString()
	unq, err := strconv.Unquote(s)
	if err != nil {
		return "", false
	}
	return unq, true
}

// rangeSource finds the composite literal ranged over by the statement
// that defines sel's base variable (the c in `for _, c := range []T{…}`).
func rangeSource(info *types.Info, body *ast.BlockStmt, sel *ast.SelectorExpr) *ast.CompositeLit {
	base, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return nil
	}
	obj := info.Uses[base]
	if obj == nil {
		return nil
	}
	var found *ast.CompositeLit
	ast.Inspect(body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok || found != nil {
			return found == nil
		}
		for _, v := range []ast.Expr{rs.Key, rs.Value} {
			if id, ok := v.(*ast.Ident); ok && info.Defs[id] == obj {
				if lit, ok := ast.Unparen(rs.X).(*ast.CompositeLit); ok {
					found = lit
				}
				return false
			}
		}
		return true
	})
	return found
}

// harvestField collects string literals bound to the named struct field
// in composite literals within root.
func harvestField(info *types.Info, root ast.Node, field string) []Metric {
	var out []Metric
	ast.Inspect(root, func(n ast.Node) bool {
		cl, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		st, ok := structType(info.TypeOf(cl))
		if !ok {
			return true
		}
		fieldIdx := -1
		for i := 0; i < st.NumFields(); i++ {
			if st.Field(i).Name() == field {
				fieldIdx = i
				break
			}
		}
		if fieldIdx < 0 {
			return true
		}
		for i, el := range cl.Elts {
			var val ast.Expr
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				if key, ok := kv.Key.(*ast.Ident); ok && key.Name == field {
					val = kv.Value
				}
			} else if i == fieldIdx {
				val = el // unkeyed row: {"name", "help", fn}
			}
			if val == nil {
				continue
			}
			if s, ok := stringLit(info, val); ok {
				out = append(out, Metric{Name: s, Pos: val.Pos()})
			}
		}
		return true
	})
	return out
}

func structType(t types.Type) (*types.Struct, bool) {
	if t == nil {
		return nil, false
	}
	st, ok := t.Underlying().(*types.Struct)
	return st, ok
}

var docTokenRE = regexp.MustCompile(`eternalgw_[a-z0-9_]+`)

// DocSync is the module-mode global check: the union of every package's
// registrations must match docs/OBSERVABILITY.md exactly, and no name may
// be registered twice anywhere in the module.
func DocSync(l *analysis.Loader, pkgs []*analysis.Package) []analysis.Diagnostic {
	var diags []analysis.Diagnostic
	all := make(map[string]token.Pos)
	for _, pkg := range pkgs {
		metrics, _ := Collect(pkg.Info, pkg.Files)
		for _, m := range metrics {
			if _, dup := all[m.Name]; dup {
				diags = append(diags, analysis.Diagnostic{
					Pos:      m.Pos,
					Analyzer: Analyzer.Name,
					Message:  "metric \"" + m.Name + "\" registered more than once in the module",
				})
				continue
			}
			all[m.Name] = m.Pos
		}
	}

	path := filepath.Join(l.ModuleDir, filepath.FromSlash(docFile))
	data, err := os.ReadFile(path)
	if err != nil {
		var pos token.Pos
		for _, p := range all {
			pos = p
			break
		}
		return append(diags, analysis.Diagnostic{
			Pos:      pos,
			Analyzer: Analyzer.Name,
			Message:  docFile + " unreadable, cannot cross-check metric documentation: " + err.Error(),
		})
	}
	// Give the documentation file real positions so findings in it are
	// clickable like any other.
	docF := l.Fset.AddFile(path, -1, len(data))
	docF.SetLinesForContent(data)

	documented := make(map[string]token.Pos)
	for _, loc := range docTokenRE.FindAllIndex(data, -1) {
		tok := string(data[loc[0]:loc[1]])
		if _, ok := documented[tok]; !ok {
			documented[tok] = docF.Pos(loc[0])
		}
	}

	for name, pos := range all {
		if _, ok := documented[name]; !ok {
			diags = append(diags, analysis.Diagnostic{
				Pos:      pos,
				Analyzer: Analyzer.Name,
				Message:  "metric \"" + name + "\" is not documented in " + docFile,
			})
		}
	}
	for tok, pos := range documented {
		if _, ok := all[tok]; ok {
			continue
		}
		// Prose may legitimately mention a bare prefix of a real metric
		// family (a grep example); only a token that prefixes nothing in
		// code is drift.
		if prefixesSomeMetric(tok, all) {
			continue
		}
		diags = append(diags, analysis.Diagnostic{
			Pos:      pos,
			Analyzer: Analyzer.Name,
			Message:  docFile + " documents \"" + tok + "\", which no code registers",
		})
	}
	return diags
}

func prefixesSomeMetric(tok string, all map[string]token.Pos) bool {
	for name := range all {
		if strings.HasPrefix(name, tok) {
			return true
		}
	}
	return false
}
