package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

const allowSrc = `package p

var a, b, c int

func f() {
	a = 1 //lint:allow fake justified reason
	//lint:allow fake standalone covers next line
	b = 2
	//lint:allow fake
	c = 3
	//lint:allow unknownname some reason
}
`

func parseAllowSrc(t *testing.T) (*token.FileSet, *ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", allowSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f
}

func TestCollectAllows(t *testing.T) {
	fset, f := parseAllowSrc(t)
	fake := &Analyzer{Name: "fake"}
	set, malformed := collectAllows(fset, []*ast.File{f}, []*Analyzer{fake})

	for _, line := range []int{6, 7, 8} {
		if !set.keys[allowKey{file: "p.go", line: line, name: "fake"}] {
			t.Errorf("line %d not suppressed", line)
		}
	}
	// Line 10 follows a malformed (reasonless) directive: a broken allow
	// must not suppress anything.
	if set.keys[allowKey{file: "p.go", line: 10, name: "fake"}] {
		t.Error("reasonless directive suppressed the next line")
	}

	if len(malformed) != 2 {
		t.Fatalf("got %d malformed diagnostics, want 2: %v", len(malformed), malformed)
	}
	if !strings.Contains(malformed[0].Message, "malformed //lint:allow") {
		t.Errorf("first malformed diagnostic = %q, want missing-reason message", malformed[0].Message)
	}
	if !strings.Contains(malformed[1].Message, "unknown analyzer unknownname") {
		t.Errorf("second malformed diagnostic = %q, want unknown-analyzer message", malformed[1].Message)
	}
	for _, d := range malformed {
		if d.Analyzer != "lintdirective" {
			t.Errorf("malformed diagnostic attributed to %q, want lintdirective", d.Analyzer)
		}
	}
}

// TestRunAnalyzersSuppression drives the full pipeline with a stub
// analyzer: a finding on an allowed line disappears, one on an
// unprotected line survives, and the malformed directives come out as
// lintdirective findings.
func TestRunAnalyzersSuppression(t *testing.T) {
	fset, f := parseAllowSrc(t)
	tf := fset.File(f.Pos())
	stub := &Analyzer{
		Name: "fake",
		Run: func(p *Pass) error {
			p.Report(tf.LineStart(6), "finding on an allowed line")
			p.Report(tf.LineStart(8), "finding under a standalone directive")
			p.Report(tf.LineStart(10), "finding under a reasonless directive")
			return nil
		},
	}
	diags, err := RunAnalyzers(fset, []*ast.File{f}, nil, nil, "", []*Analyzer{stub})
	if err != nil {
		t.Fatal(err)
	}
	var kept []string
	for _, d := range diags {
		kept = append(kept, d.Analyzer+": "+d.Message)
	}
	want := []string{
		"fake: finding under a reasonless directive",
		"lintdirective: malformed //lint:allow: want \"//lint:allow <analyzer> <reason>\" with a non-empty reason",
		"lintdirective: //lint:allow names unknown analyzer unknownname",
	}
	if len(kept) != len(want) {
		t.Fatalf("got %d diagnostics %v, want %d", len(kept), kept, len(want))
	}
	for i := range want {
		if kept[i] != want[i] {
			t.Errorf("diagnostic %d = %q, want %q", i, kept[i], want[i])
		}
	}
}
