// Package experiments implements the reproduction harness: one
// experiment per figure and per evaluated claim of the paper, as indexed
// in DESIGN.md section 4. Each experiment builds the domains it needs,
// runs its workload, and returns a table; cmd/experiments prints every
// table, and the repository-root benchmarks exercise the same paths
// under testing.B.
//
// The paper is a design paper without measured tables, so "reproducing"
// an experiment means demonstrating the mechanism each figure describes
// and measuring its behaviour on this implementation (absolute numbers
// reflect the in-process simulation, not the authors' 1990s testbed; the
// shapes are what carries over — see EXPERIMENTS.md).
package experiments

import (
	"fmt"
	"strings"
	"time"

	"eternalgw/internal/domain"
	"eternalgw/internal/totem"
)

// Result is one experiment's reproduced table.
type Result struct {
	// ID is the experiment identifier from DESIGN.md (e.g. "E3").
	ID string
	// Title summarizes the experiment.
	Title string
	// Source cites the paper figure or section reproduced.
	Source string
	// Headers and Rows form the table.
	Headers []string
	Rows    [][]string
	// Notes records observations (expected shape, caveats).
	Notes []string
}

// Config tunes experiment scale.
type Config struct {
	// Quick reduces workload sizes so the full suite runs in seconds
	// (used by tests); the default sizes are meant for cmd/experiments.
	Quick bool
}

// ops returns full unless Quick, then quick.
func (c Config) ops(full, quick int) int {
	if c.Quick {
		return quick
	}
	return full
}

// Runner is one experiment.
type Runner struct {
	ID  string
	Run func(Config) (Result, error)
}

// All returns every experiment in index order.
func All() []Runner {
	return []Runner{
		{"E1", runE1MultiDomain},
		{"E2", runE2InfrastructureOverhead},
		{"E3", runE3DuplicateSuppression},
		{"E4", runE4MessageEncapsulation},
		{"E5", runE5GatewayLoops},
		{"E6", runE6OperationIdentifiers},
		{"E7", runE7SingleGatewayFailure},
		{"E8", runE8GatewayFailover},
		{"E9", runE9ReplicationStyles},
		{"E10", runE10GatewayScalability},
		{"E11", runE11ReplicaConsistency},
		{"E12", runE12StateTransfer},
	}
}

// ByID returns the named experiment.
func ByID(id string) (Runner, bool) {
	for _, r := range All() {
		if strings.EqualFold(r.ID, id) {
			return r, true
		}
	}
	return Runner{}, false
}

// FormatMarkdown renders a result as a GitHub-flavoured markdown table,
// for pasting into EXPERIMENTS.md.
func FormatMarkdown(r Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s (%s)\n\n", r.ID, r.Title, r.Source)
	b.WriteString("| " + strings.Join(r.Headers, " | ") + " |\n")
	rule := make([]string, len(r.Headers))
	for i := range rule {
		rule[i] = "---"
	}
	b.WriteString("| " + strings.Join(rule, " | ") + " |\n")
	for _, row := range r.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	return b.String()
}

// Format renders a result as an aligned text table.
func Format(r Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s (%s)\n", r.ID, r.Title, r.Source)
	widths := make([]int, len(r.Headers))
	for i, h := range r.Headers {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(r.Headers)
	rule := make([]string, len(r.Headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	line(rule)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// fastTotem returns the protocol timeouts every experiment domain uses.
func fastTotem() totem.Config {
	return totem.Config{
		IdleHold:        100 * time.Microsecond,
		TokenRetransmit: 10 * time.Millisecond,
		FailTimeout:     80 * time.Millisecond,
		GatherTimeout:   20 * time.Millisecond,
	}
}

// newDomain builds an experiment domain.
func newDomain(name string, nodes int) (*domain.Domain, error) {
	return domain.New(domain.Config{
		Name:                 name,
		Nodes:                nodes,
		Totem:                fastTotem(),
		GatewayInvokeTimeout: 10 * time.Second,
	})
}
