package experiments

import (
	"strconv"
	"strings"
	"testing"
)

// TestAllExperimentsRunQuick executes the entire reproduction suite in
// quick mode and sanity-checks each table's shape, acting as the
// integration test for the full stack.
func TestAllExperimentsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment suite skipped in -short mode")
	}
	for _, r := range All() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			res, err := r.Run(Config{Quick: true})
			if err != nil {
				t.Fatalf("%s failed: %v", r.ID, err)
			}
			if res.ID != r.ID {
				t.Errorf("result id = %s", res.ID)
			}
			if len(res.Headers) == 0 || len(res.Rows) == 0 {
				t.Fatalf("%s produced an empty table", r.ID)
			}
			for i, row := range res.Rows {
				if len(row) != len(res.Headers) {
					t.Errorf("row %d has %d cells, want %d", i, len(row), len(res.Headers))
				}
			}
			out := Format(res)
			if !strings.Contains(out, res.Title) {
				t.Errorf("formatted output missing title")
			}
		})
	}
}

func TestE3ShapeExactSuppression(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short mode")
	}
	res, err := runE3DuplicateSuppression(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	// Every row must suppress exactly (k-1) * ops duplicates and execute
	// exactly once at every replica.
	for _, row := range res.Rows {
		suppressed, _ := strconv.Atoi(row[3])
		expected, _ := strconv.Atoi(row[4])
		if suppressed != expected {
			t.Errorf("k=%s: suppressed %s, want %s", row[0], row[3], row[4])
		}
		if row[5] != "true" {
			t.Errorf("k=%s: replicas did not execute exactly once", row[0])
		}
	}
}

func TestE7ShapeShowsAbandonment(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short mode")
	}
	res, err := runE7SingleGatewayFailure(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	vals := rowMap(res)
	if vals["abandoned (no response, fate unknown)"] == "0" {
		t.Error("expected abandoned requests with a single gateway")
	}
	if vals["re-executions (state corruption risk)"] == "0" {
		t.Error("expected the in-flight operation to execute twice")
	}
}

func TestE8ShapeZeroLossZeroDuplication(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short mode")
	}
	res, err := runE8GatewayFailover(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	vals := rowMap(res)
	if vals["operations lost"] != "0" {
		t.Errorf("lost = %s", vals["operations lost"])
	}
	if vals["operations duplicated"] != "0" {
		t.Errorf("duplicated = %s", vals["operations duplicated"])
	}
	if vals["profile failovers performed"] == "0" {
		t.Error("no failovers recorded; the experiment did not exercise failover")
	}
}

func TestE11ShapeConsistency(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short mode")
	}
	res, err := runE11ReplicaConsistency(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	vals := rowMap(res)
	if vals["replica states byte-identical"] != "true" {
		t.Error("replicas diverged")
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("e3"); !ok {
		t.Error("ByID(e3) not found")
	}
	if _, ok := ByID("E99"); ok {
		t.Error("ByID(E99) found")
	}
}

func TestFormatAligned(t *testing.T) {
	out := Format(Result{
		ID: "EX", Title: "T", Source: "S",
		Headers: []string{"a", "longer"},
		Rows:    [][]string{{"wide-cell", "b"}},
		Notes:   []string{"n"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4+0+1 { // title, header, rule, row, note
		t.Fatalf("lines = %d: %q", len(lines), out)
	}
	if !strings.HasPrefix(lines[len(lines)-1], "note: ") {
		t.Errorf("missing note line")
	}
}

func rowMap(res Result) map[string]string {
	out := make(map[string]string, len(res.Rows))
	for _, row := range res.Rows {
		if len(row) >= 2 {
			out[row[0]] = row[1]
		}
	}
	return out
}
