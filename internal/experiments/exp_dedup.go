package experiments

import (
	"bytes"
	"fmt"
	"sync"
	"time"

	"eternalgw/internal/cdr"
	"eternalgw/internal/orb"
	"eternalgw/internal/replication"
)

// runE3DuplicateSuppression reproduces figure 3: an unreplicated client
// invoking through the gateway receives exactly one response per
// request, with the other k-1 copies (one per active server replica)
// detected and suppressed by response identifier.
func runE3DuplicateSuppression(cfg Config) (Result, error) {
	ops := cfg.ops(100, 15)
	var rows [][]string
	for _, k := range []int{1, 2, 3, 5} {
		d, err := newDomain("ny", k+1)
		if err != nil {
			return Result{}, err
		}
		apps, err := deployRegisters(d, expServerGroup, expServerKey, replication.Active, k)
		if err != nil {
			d.Close()
			return Result{}, err
		}
		gw, err := d.AddGateway(k, "")
		if err != nil {
			d.Close()
			return Result{}, err
		}
		conn, err := orb.Dial(gw.Addr())
		if err != nil {
			d.Close()
			return Result{}, err
		}
		for i := 0; i < ops; i++ {
			if _, err := conn.Call([]byte(expServerKey), "append", OctetSeqArg([]byte("x")), orb.InvokeOptions{}); err != nil {
				_ = conn.Close()
				d.Close()
				return Result{}, err
			}
		}
		// Let the trailing duplicate responses drain.
		wantDup := uint64(ops * (k - 1))
		deadline := time.Now().Add(3 * time.Second)
		rmStats := d.Node(k).RM.Stats()
		for rmStats.DuplicateResponses < wantDup && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
			rmStats = d.Node(k).RM.Stats()
		}
		executedOnceEverywhere := true
		for _, app := range apps {
			if app.Ops() != int64(ops) {
				executedOnceEverywhere = false
			}
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", k),
			fmt.Sprintf("%d", ops),
			fmt.Sprintf("%d", rmStats.ResponsesDelivered),
			fmt.Sprintf("%d", rmStats.DuplicateResponses),
			fmt.Sprintf("%d", wantDup),
			fmt.Sprintf("%v", executedOnceEverywhere),
		})
		_ = conn.Close()
		d.Close()
	}
	return Result{
		ID:      "E3",
		Title:   "Duplicate response suppression at the gateway",
		Source:  "Figure 3 / Section 3.3",
		Headers: []string{"replicas k", "requests", "delivered", "duplicates suppressed", "expected k-1 per op", "each replica executed once"},
		Rows:    rows,
		Notes: []string{
			"expected shape: exactly one response delivered per request; (k-1) x requests duplicate copies suppressed; every replica executes every operation exactly once",
		},
	}, nil
}

// opIDRecorder wraps a RegisterApp and records the operation identifier
// stream its replica observes, via the replication observer.
type opIDRecorder struct {
	mu  sync.Mutex
	ids []replication.OperationID
}

func (r *opIDRecorder) record(id replication.OperationID) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ids = append(r.ids, id)
}

func (r *opIDRecorder) snapshot() []replication.OperationID {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]replication.OperationID(nil), r.ids...)
}

// relayRegister forwards "relay" calls to a nested target group; used to
// generate nested operation identifiers.
type relayRegister struct {
	h *replication.Handle
}

func (a *relayRegister) Invoke(op string, args *cdr.Reader, reply *cdr.Writer) error {
	if op != "relay" {
		return fmt.Errorf("relayRegister: unknown op %q", op)
	}
	payload := args.ReadOctetSeq()
	if err := args.Err(); err != nil {
		return err
	}
	r, err := a.h.Invoke([]byte("exp/nested"), "append", OctetSeqArg(payload), 10*time.Second)
	if err != nil {
		return err
	}
	reply.WriteLongLong(r.ReadLongLong())
	return r.Err()
}

func (a *relayRegister) State() ([]byte, error) { return nil, nil }
func (a *relayRegister) SetState([]byte) error  { return nil }

// runE6OperationIdentifiers reproduces figure 6: invocation, response
// and operation identifiers. It drives nested invocations through two
// replicated groups and checks that (1) every top-level and nested
// operation has a unique operation identifier, (2) replicas of the
// issuing group determine identical identifiers (evidenced by the nested
// target executing each operation exactly once), and (3) responses carry
// the identifier of their invocation.
func runE6OperationIdentifiers(cfg Config) (Result, error) {
	ops := cfg.ops(100, 15)
	d, err := newDomain("ny", 3)
	if err != nil {
		return Result{}, err
	}
	defer d.Close()

	const (
		frontGrp  replication.GroupID = 120
		nestedGrp replication.GroupID = 121
	)
	nestedApps, err := deployRegisters(d, nestedGrp, "exp/nested", replication.Active, 2)
	if err != nil {
		return Result{}, err
	}
	// Front group: two relay replicas, each issuing nested invocations.
	if err := d.Node(0).RM.CreateGroup(frontGrp, replication.Active, []byte("exp/front")); err != nil {
		return Result{}, err
	}
	for i := 0; i < 2; i++ {
		rm := d.Node(i).RM
		if err := rm.WaitForGroup(frontGrp, 5*time.Second); err != nil {
			return Result{}, err
		}
		if err := rm.JoinGroup(frontGrp, &relayRegister{h: rm.Handle(frontGrp)}); err != nil {
			return Result{}, err
		}
		if err := rm.WaitSynced(frontGrp, 5*time.Second); err != nil {
			return Result{}, err
		}
	}

	// Record the nested group's invocation identifier stream at node 0
	// (observers fire only at group members; node 0 hosts a nested
	// replica).
	rec := &opIDRecorder{}
	d.Node(0).RM.SetObserver(nestedGrp, func(msg replication.Message, ts uint64) {
		if msg.Header.Kind == replication.KindInvocation {
			rec.record(msg.Header.Op)
		}
	})

	gw, err := d.AddGateway(2, "")
	if err != nil {
		return Result{}, err
	}
	conn, err := orb.Dial(gw.Addr())
	if err != nil {
		return Result{}, err
	}
	defer func() { _ = conn.Close() }()
	for i := 0; i < ops; i++ {
		if _, err := conn.Call([]byte("exp/front"), "relay", OctetSeqArg([]byte("n")), orb.InvokeOptions{}); err != nil {
			return Result{}, err
		}
	}

	// Wait for the nested replicas to finish executing.
	deadline := time.Now().Add(5 * time.Second)
	for nestedApps[0].Ops() < int64(ops) && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}

	ids := rec.snapshot()
	distinct := make(map[replication.OperationID]int)
	for _, id := range ids {
		distinct[id]++
	}
	nonZeroParents := 0
	for id := range distinct {
		if id.ParentTS != 0 {
			nonZeroParents++
		}
	}
	identical := nestedApps[0].Ops() == int64(ops) && nestedApps[1].Ops() == int64(ops) &&
		bytes.Equal(nestedApps[0].Value(), nestedApps[1].Value())

	return Result{
		ID:      "E6",
		Title:   "Operation identifiers for nested invocations",
		Source:  "Figure 6 / Section 3.3",
		Headers: []string{"quantity", "value"},
		Rows: [][]string{
			{"top-level operations issued", fmt.Sprint(ops)},
			{"nested invocation messages observed (2 issuing replicas)", fmt.Sprint(len(ids))},
			{"distinct nested operation identifiers", fmt.Sprint(len(distinct))},
			{"identifiers with parent timestamp (T_A_inv) set", fmt.Sprint(nonZeroParents)},
			{"nested target executed each op exactly once at every replica", fmt.Sprint(identical)},
		},
		Notes: []string{
			"both issuing replicas compute (T_A_inv, S_A_inv) identically, so ~2 messages per operation collapse to one distinct identifier and one execution",
		},
	}, nil
}

// runE11ReplicaConsistency reproduces the strong-replica-consistency
// claim of section 2.2: concurrent clients through the gateway, with the
// totally-ordered delivery forcing every replica through the identical
// state sequence.
func runE11ReplicaConsistency(cfg Config) (Result, error) {
	clients := 4
	per := cfg.ops(50, 10)
	d, err := newDomain("ny", 3)
	if err != nil {
		return Result{}, err
	}
	defer d.Close()
	apps, err := deployRegisters(d, expServerGroup, expServerKey, replication.Active, 3)
	if err != nil {
		return Result{}, err
	}
	gw, err := d.AddGateway(2, "")
	if err != nil {
		return Result{}, err
	}

	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(tag byte) {
			defer wg.Done()
			conn, err := orb.Dial(gw.Addr())
			if err != nil {
				errCh <- err
				return
			}
			defer func() { _ = conn.Close() }()
			for i := 0; i < per; i++ {
				if _, err := conn.Call([]byte(expServerKey), "append", OctetSeqArg([]byte{tag}), orb.InvokeOptions{}); err != nil {
					errCh <- err
					return
				}
			}
		}(byte('A' + c))
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		return Result{}, err
	}

	total := int64(clients * per)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		done := true
		for _, app := range apps {
			if app.Ops() != total {
				done = false
			}
		}
		if done {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	consistent := bytes.Equal(apps[0].Value(), apps[1].Value()) && bytes.Equal(apps[1].Value(), apps[2].Value())
	return Result{
		ID:      "E11",
		Title:   "Strong replica consistency under concurrent clients",
		Source:  "Section 2.2",
		Headers: []string{"quantity", "value"},
		Rows: [][]string{
			{"concurrent clients", fmt.Sprint(clients)},
			{"operations per client", fmt.Sprint(per)},
			{"replica 0 ops", fmt.Sprint(apps[0].Ops())},
			{"replica 1 ops", fmt.Sprint(apps[1].Ops())},
			{"replica 2 ops", fmt.Sprint(apps[2].Ops())},
			{"replica states byte-identical", fmt.Sprint(consistent)},
		},
		Notes: []string{
			"the interleaving of the clients' appends is arbitrary, but identical at every replica: total order is what turns concurrency into determinism",
		},
	}, nil
}
