package experiments

import (
	"fmt"
	"sync"
	"time"

	"eternalgw/internal/metrics"
	"eternalgw/internal/orb"
	"eternalgw/internal/replication"
)

// runE10GatewayScalability measures one gateway's throughput and latency
// as the number of concurrent unreplicated TCP clients grows (sections 1
// and 3.2: a gateway serves many clients, spawning one socket per client
// and keeping per-group client-identifier counters).
func runE10GatewayScalability(cfg Config) (Result, error) {
	per := cfg.ops(50, 10)
	clientCounts := []int{1, 2, 4, 8, 16}
	if cfg.Quick {
		clientCounts = []int{1, 4}
	}

	d, err := newDomain("ny", 3)
	if err != nil {
		return Result{}, err
	}
	defer d.Close()
	if _, err := deployRegisters(d, expServerGroup, expServerKey, replication.Active, 2); err != nil {
		return Result{}, err
	}
	gw, err := d.AddGateway(2, "")
	if err != nil {
		return Result{}, err
	}

	var rows [][]string
	for _, clients := range clientCounts {
		lat := &metrics.Histogram{}
		tp := metrics.StartThroughput()
		var (
			wg    sync.WaitGroup
			errMu sync.Mutex
			first error
		)
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				conn, err := orb.Dial(gw.Addr())
				if err != nil {
					errMu.Lock()
					if first == nil {
						first = err
					}
					errMu.Unlock()
					return
				}
				defer func() { _ = conn.Close() }()
				for i := 0; i < per; i++ {
					start := time.Now()
					if _, err := conn.Call([]byte(expServerKey), "ops", nil, orb.InvokeOptions{}); err != nil {
						errMu.Lock()
						if first == nil {
							first = err
						}
						errMu.Unlock()
						return
					}
					lat.Record(time.Since(start))
				}
			}()
		}
		wg.Wait()
		if first != nil {
			return Result{}, first
		}
		tp.Add(clients * per)
		rows = append(rows, []string{
			fmt.Sprint(clients),
			fmt.Sprint(clients * per),
			fmt.Sprintf("%.0f", tp.PerSecond()),
			lat.Mean().Round(time.Microsecond).String(),
			lat.Percentile(99).Round(time.Microsecond).String(),
		})
	}
	st := gw.Stats()
	return Result{
		ID:      "E10",
		Title:   "Gateway scalability with concurrent unreplicated clients",
		Source:  "Sections 1, 3.2",
		Headers: []string{"clients", "ops", "ops/s", "mean latency", "p99"},
		Rows:    rows,
		Notes: []string{
			fmt.Sprintf("gateway totals: connections=%d requests=%d replies=%d", st.ConnectionsAccepted, st.RequestsReceived, st.RepliesReturned),
			"expected shape: throughput rises with client concurrency until the single totem ring serializing the domain saturates, then latency grows while throughput flattens",
		},
	}, nil
}
