package experiments

import (
	"fmt"
	"sync"
	"time"

	"eternalgw/internal/cdr"
	"eternalgw/internal/domain"
	"eternalgw/internal/ftmgmt"
	"eternalgw/internal/replication"
)

// RegisterApp is the deterministic workload object used by most
// experiments: a byte register with an operation counter. It is exported
// so examples and benchmarks can reuse it.
type RegisterApp struct {
	mu    sync.Mutex
	value []byte
	ops   int64
}

// Invoke implements replication.Application.
func (a *RegisterApp) Invoke(op string, args *cdr.Reader, reply *cdr.Writer) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	switch op {
	case "set":
		a.value = append(a.value[:0], args.ReadOctetSeq()...)
		a.ops++
		reply.WriteLongLong(a.ops)
		return args.Err()
	case "append":
		a.value = append(a.value, args.ReadOctetSeq()...)
		a.ops++
		reply.WriteLongLong(a.ops)
		return args.Err()
	case "echo":
		a.ops++
		reply.WriteOctetSeq(args.ReadOctetSeq())
		return args.Err()
	case "work":
		// Sleep the given number of milliseconds, then append. Used to
		// hold an invocation "inside" the domain while faults are
		// injected; the delay is identical at every replica, so
		// determinism is preserved.
		ms := args.ReadULong()
		data := args.ReadOctetSeq()
		if err := args.Err(); err != nil {
			return err
		}
		a.mu.Unlock()
		time.Sleep(time.Duration(ms) * time.Millisecond)
		a.mu.Lock()
		a.value = append(a.value, data...)
		a.ops++
		reply.WriteLongLong(a.ops)
		return nil
	case "read":
		reply.WriteOctetSeq(a.value)
		return nil
	case "ops":
		reply.WriteLongLong(a.ops)
		return nil
	default:
		return fmt.Errorf("RegisterApp: unknown operation %q", op)
	}
}

// State implements replication.Application.
func (a *RegisterApp) State() ([]byte, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	w := cdr.NewWriter(cdr.BigEndian)
	w.WriteLongLong(a.ops)
	w.WriteOctetSeq(a.value)
	return w.Bytes(), nil
}

// SetState implements replication.Application.
func (a *RegisterApp) SetState(state []byte) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	r := cdr.NewReader(state, cdr.BigEndian)
	a.ops = r.ReadLongLong()
	a.value = append(a.value[:0], r.ReadOctetSeq()...)
	return r.Err()
}

// Ops returns the executed-operation count.
func (a *RegisterApp) Ops() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.ops
}

// Value returns a copy of the register contents.
func (a *RegisterApp) Value() []byte {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]byte(nil), a.value...)
}

// WorkArg CDR-encodes the arguments of the "work" operation: a sleep in
// milliseconds followed by the bytes to append.
func WorkArg(ms uint32, data []byte) []byte {
	w := cdr.NewWriter(cdr.BigEndian)
	w.WriteULong(ms)
	w.WriteOctetSeq(data)
	return w.Bytes()
}

// OctetSeqArg CDR-encodes a sequence<octet> argument.
func OctetSeqArg(b []byte) []byte {
	w := cdr.NewWriter(cdr.BigEndian)
	w.WriteOctetSeq(b)
	return w.Bytes()
}

// deployRegisters places a replicated RegisterApp and returns the
// replica instances.
func deployRegisters(d *domain.Domain, grp replication.GroupID, key string, style replication.Style, replicas int) ([]*RegisterApp, error) {
	var (
		mu   sync.Mutex
		apps []*RegisterApp
	)
	err := d.Manager().CreateReplicatedObject(grp, ftmgmt.Properties{
		Style:           style,
		InitialReplicas: replicas,
		MinReplicas:     replicas,
		ObjectKey:       []byte(key),
		TypeID:          "IDL:eternalgw/Register:1.0",
	}, func() (replication.Application, error) {
		mu.Lock()
		defer mu.Unlock()
		app := &RegisterApp{}
		apps = append(apps, app)
		return app, nil
	})
	if err != nil {
		return nil, err
	}
	return apps, nil
}
