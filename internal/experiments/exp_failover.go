package experiments

import (
	"fmt"
	"time"

	"eternalgw/internal/domain"
	"eternalgw/internal/faultinject"
	"eternalgw/internal/giop"
	"eternalgw/internal/metrics"
	"eternalgw/internal/orb"
	"eternalgw/internal/replication"
	"eternalgw/internal/thinclient"
)

// runE7SingleGatewayFailure reproduces section 3.4: with existing ORBs
// (single-profile IORs, no client identifiers) the gateway is a single
// point of failure. The client's in-flight requests are abandoned when
// the gateway dies, and a naive resend through a recovered gateway
// duplicates the operation.
func runE7SingleGatewayFailure(cfg Config) (Result, error) {
	total := cfg.ops(40, 12)
	killAt := total / 2

	d, err := newDomain("ny", 3)
	if err != nil {
		return Result{}, err
	}
	defer d.Close()
	apps, err := deployRegisters(d, expServerGroup, expServerKey, replication.Active, 2)
	if err != nil {
		return Result{}, err
	}
	gw1, err := d.AddGateway(2, "")
	if err != nil {
		return Result{}, err
	}

	conn, err := orb.Dial(gw1.Addr())
	if err != nil {
		return Result{}, err
	}
	defer func() { _ = conn.Close() }()

	completed, abandoned := 0, 0
	var pendingResend []pendingReq
	for i := 1; i <= killAt-1; i++ {
		_, err := conn.Call([]byte(expServerKey), "append", OctetSeqArg([]byte("x")), orb.InvokeOptions{RequestID: uint32(i), Timeout: 2 * time.Second})
		if err != nil {
			return Result{}, err
		}
		completed++
	}

	// Request killAt is a slow operation: it reaches the domain and
	// starts executing, then the gateway process fails before the
	// response can be returned. The client observes only a dead
	// connection — the fate of the request is unknowable to it.
	inFlight := make(chan error, 1)
	go func() {
		_, err := conn.Call([]byte(expServerKey), "work", WorkArg(150, []byte("x")), orb.InvokeOptions{RequestID: uint32(killAt), Timeout: 2 * time.Second})
		inFlight <- err
	}()
	time.Sleep(50 * time.Millisecond) // let it reach the domain
	_ = gw1.Close()                   // the gateway process fails
	if err := <-inFlight; err == nil {
		return Result{}, fmt.Errorf("in-flight request survived the gateway failure")
	}
	abandoned++
	pendingResend = append(pendingResend, pendingReq{id: uint32(killAt), op: "work", args: WorkArg(150, []byte("x"))})

	// Requests after the failure also fail: the single gateway was the
	// only way in.
	for i := killAt + 1; i <= total; i++ {
		_, err := conn.Call([]byte(expServerKey), "append", OctetSeqArg([]byte("x")), orb.InvokeOptions{RequestID: uint32(i), Timeout: 300 * time.Millisecond})
		if err == nil {
			return Result{}, fmt.Errorf("request through dead gateway succeeded")
		}
		abandoned++
		pendingResend = append(pendingResend, pendingReq{id: uint32(i), op: "append", args: OctetSeqArg([]byte("x"))})
	}

	// The gateway recovers; the client reconnects and resends every
	// request it never got an answer for — the paper's unpreventable
	// duplication, because the recovered gateway cannot identify the
	// client (section 3.4): the in-flight operation had already executed
	// inside the domain, and now executes a second time.
	gw2, err := d.AddGateway(2, "")
	if err != nil {
		return Result{}, err
	}
	conn2, err := orb.Dial(gw2.Addr())
	if err != nil {
		return Result{}, err
	}
	defer func() { _ = conn2.Close() }()
	resent := 0
	for _, p := range pendingResend {
		if _, err := conn2.Call([]byte(expServerKey), p.op, p.args, orb.InvokeOptions{RequestID: p.id, Timeout: 2 * time.Second}); err == nil {
			resent++
		}
	}

	// Count how many operations actually executed: anything beyond the
	// client's distinct requests is a duplicate.
	distinct := int64(completed + len(pendingResend))
	deadline := time.Now().Add(3 * time.Second)
	for apps[0].Ops() < distinct && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	executed := apps[0].Ops()
	reExecuted := executed - distinct
	if reExecuted < 0 {
		reExecuted = 0
	}

	return Result{
		ID:      "E7",
		Title:   "Single gateway is a single point of failure (plain ORBs)",
		Source:  "Section 3.4",
		Headers: []string{"quantity", "value"},
		Rows: [][]string{
			{"requests attempted", fmt.Sprint(total)},
			{"completed before failure", fmt.Sprint(completed)},
			{"abandoned (no response, fate unknown)", fmt.Sprint(abandoned)},
			{"of which in flight inside the domain", "1"},
			{"resent after reconnection", fmt.Sprint(resent)},
			{"distinct operations the client issued", fmt.Sprint(distinct)},
			{"operations executed by the servers", fmt.Sprint(executed)},
			{"re-executions (state corruption risk)", fmt.Sprint(reExecuted)},
		},
		Notes: []string{
			"expected shape: abandoned > 0 (the client never learns those requests' fate) and re-executions > 0 — the in-flight operation had executed before the crash, and the recovered gateway cannot recognize the resend because counter-assigned client identifiers die with the gateway",
		},
	}, nil
}

// pendingReq is a request the plain client must resend after the
// gateway failure.
type pendingReq struct {
	id   uint32
	op   string
	args []byte
}

// runE8GatewayFailover reproduces section 3.5: redundant gateways plus
// the enhanced client-side interception layer. The client fails over to
// the next profile, reissues pending invocations, and no operation is
// lost or executed twice.
func runE8GatewayFailover(cfg Config) (Result, error) {
	total := cfg.ops(60, 15)
	killAt := total / 3

	d, err := newDomain("ny", 4)
	if err != nil {
		return Result{}, err
	}
	defer d.Close()
	apps, err := deployRegisters(d, expServerGroup, expServerKey, replication.Active, 2)
	if err != nil {
		return Result{}, err
	}
	for i := 0; i < 3; i++ {
		if _, err := d.AddGateway((i+2)%4, ""); err != nil {
			return Result{}, err
		}
	}
	ref, err := d.PublishIOR("IDL:eternalgw/Register:1.0", []byte(expServerKey))
	if err != nil {
		return Result{}, err
	}
	c, err := thinclient.Dial(ref, thinclient.Config{CallTimeout: 2 * time.Second})
	if err != nil {
		return Result{}, err
	}
	defer func() { _ = c.Close() }()

	// The fault schedule: kill two of the three gateways at fixed
	// operation counts, so the run is reproducible.
	plan := faultinject.NewPlan(
		faultinject.Step{AtOp: uint64(killAt), Name: "kill gateway 0", Action: func() { _ = d.Gateways()[0].Close() }},
		faultinject.Step{AtOp: uint64(2 * killAt), Name: "kill gateway 1", Action: func() { _ = d.Gateways()[1].Close() }},
	)
	lat := &metrics.Histogram{}
	var worst time.Duration
	for i := 1; i <= total; i++ {
		plan.Tick()
		start := time.Now()
		r, err := c.Call("append", OctetSeqArg([]byte("x")))
		if err != nil {
			return Result{}, fmt.Errorf("call %d lost: %w", i, err)
		}
		elapsed := time.Since(start)
		lat.Record(elapsed)
		if elapsed > worst {
			worst = elapsed
		}
		if got := r.ReadLongLong(); got != int64(i) {
			return Result{}, fmt.Errorf("call %d returned %d: lost or duplicated", i, got)
		}
	}
	deadline := time.Now().Add(3 * time.Second)
	for apps[0].Ops() < int64(total) && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	st := c.Stats()
	fired := plan.Fired()
	return Result{
		ID:      "E8",
		Title:   "Redundant gateways with the enhanced client layer",
		Source:  "Section 3.5",
		Headers: []string{"quantity", "value"},
		Rows: [][]string{
			{"requests attempted", fmt.Sprint(total)},
			{"requests completed", fmt.Sprint(total)},
			{"gateways killed mid-run", fmt.Sprintf("%d of 3 (%v)", len(fired), fired)},
			{"profile failovers performed", fmt.Sprint(st.Failovers)},
			{"invocations reissued", fmt.Sprint(st.Reissues)},
			{"operations executed by the servers", fmt.Sprint(apps[0].Ops())},
			{"operations lost", "0"},
			{"operations duplicated", fmt.Sprint(apps[0].Ops() - int64(total))},
			{"fault-free median latency", lat.Percentile(50).Round(time.Microsecond).String()},
			{"worst-case (failover) latency", worst.Round(time.Microsecond).String()},
		},
		Notes: []string{
			"expected shape: zero lost, zero duplicated — the unique client identifier plus reused request identifiers let the gateways and servers recognize every reissue",
		},
	}, nil
}

// runE9ReplicationStyles compares the replication styles of section 2:
// fault-free invocation latency against recovery behaviour when the
// primary (or one active replica) crashes.
func runE9ReplicationStyles(cfg Config) (Result, error) {
	warm := cfg.ops(60, 16)
	var rows [][]string
	for _, style := range []replication.Style{replication.Active, replication.WarmPassive, replication.ColdPassive} {
		d, err := newDomain("ny", 3)
		if err != nil {
			return Result{}, err
		}
		if _, err := deployRegisters(d, expServerGroup, expServerKey, style, 2); err != nil {
			d.Close()
			return Result{}, err
		}
		rm := d.Node(2).RM
		if err := rm.JoinGroup(1, nil); err != nil {
			d.Close()
			return Result{}, err
		}
		if err := rm.WaitSynced(1, 5*time.Second); err != nil {
			d.Close()
			return Result{}, err
		}
		invoke := func(reqID uint32, op string) error {
			_, err := rm.Invoke(1, 5, expServerGroup,
				replication.OperationID{ChildSeq: reqID},
				giop.Request{RequestID: reqID, ResponseExpected: true, ObjectKey: []byte(expServerKey), Operation: op, Args: OctetSeqArg([]byte("x"))},
				10*time.Second)
			return err
		}

		lat := &metrics.Histogram{}
		for i := 1; i <= warm; i++ {
			start := time.Now()
			if err := invoke(uint32(i), "append"); err != nil {
				d.Close()
				return Result{}, err
			}
			lat.Record(time.Since(start))
		}

		// Crash the first-placed replica (the primary of passive
		// groups) and measure until the next invocation succeeds.
		members := rm.Members(expServerGroup)
		for i := 0; i < d.Nodes(); i++ {
			if d.Node(i).ID == members[0] {
				d.CrashNode(i)
				break
			}
		}
		crashStart := time.Now()
		var recovery time.Duration
		for i := warm + 1; ; i++ {
			err := invoke(uint32(i), "append")
			if err == nil {
				recovery = time.Since(crashStart)
				break
			}
			if time.Since(crashStart) > 15*time.Second {
				d.Close()
				return Result{}, fmt.Errorf("%v: no recovery after crash: %w", style, err)
			}
		}
		stats := combinedStats(d)
		rows = append(rows, []string{
			style.String(),
			lat.Mean().Round(time.Microsecond).String(),
			lat.Percentile(99).Round(time.Microsecond).String(),
			recovery.Round(time.Millisecond).String(),
			fmt.Sprint(stats.Failovers),
			fmt.Sprint(stats.ReplayedInvocations),
			fmt.Sprint(stats.StateSyncs),
			fmt.Sprint(stats.Checkpoints),
		})
		d.Close()
	}
	return Result{
		ID:      "E9",
		Title:   "Replication styles: fault-free cost vs recovery",
		Source:  "Section 2",
		Headers: []string{"style", "mean latency", "p99", "recovery after crash", "failovers", "replayed", "state syncs", "checkpoints"},
		Rows:    rows,
		Notes: []string{
			"expected shape: recovery time is dominated by failure detection (the totem fail timeout plus membership exchange) for every style; the styles differ in what recovery does — active needs no failover at all, warm passive replays only the operations since the last sync, cold passive restores the checkpoint and replays everything after it",
		},
	}, nil
}

// runE12StateTransfer measures state transfer to new replicas (section
// 2.2): time from join to synced for growing state sizes, for an active
// joiner and for cold-passive recovery.
func runE12StateTransfer(cfg Config) (Result, error) {
	sizes := []int{1 << 10, 64 << 10, 512 << 10}
	if cfg.Quick {
		sizes = []int{1 << 10, 64 << 10}
	}
	var rows [][]string
	for _, size := range sizes {
		d, err := newDomain("ny", 3)
		if err != nil {
			return Result{}, err
		}
		if _, err := deployRegisters(d, expServerGroup, expServerKey, replication.Active, 1); err != nil {
			d.Close()
			return Result{}, err
		}
		rm := d.Node(2).RM
		if err := rm.JoinGroup(1, nil); err != nil {
			d.Close()
			return Result{}, err
		}
		if err := rm.WaitSynced(1, 5*time.Second); err != nil {
			d.Close()
			return Result{}, err
		}
		// Load the state.
		_, err = rm.Invoke(1, 5, expServerGroup,
			replication.OperationID{ChildSeq: 1},
			giop.Request{RequestID: 1, ResponseExpected: true, ObjectKey: []byte(expServerKey), Operation: "set", Args: OctetSeqArg(make([]byte, size))},
			10*time.Second)
		if err != nil {
			d.Close()
			return Result{}, err
		}

		// New replica joins; measure join -> synced.
		joiner := &RegisterApp{}
		start := time.Now()
		if err := d.Node(1).RM.JoinGroup(expServerGroup, joiner); err != nil {
			d.Close()
			return Result{}, err
		}
		if err := d.Node(1).RM.WaitSynced(expServerGroup, 10*time.Second); err != nil {
			d.Close()
			return Result{}, err
		}
		elapsed := time.Since(start)
		ok := len(joiner.Value()) == size
		rows = append(rows, []string{
			fmt.Sprintf("%d KiB", size>>10),
			elapsed.Round(time.Microsecond).String(),
			fmt.Sprint(ok),
		})
		d.Close()
	}
	return Result{
		ID:      "E12",
		Title:   "State transfer to new replicas",
		Source:  "Section 2.2",
		Headers: []string{"state size", "join -> synced", "state intact"},
		Rows:    rows,
		Notes: []string{
			"expected shape: transfer time grows with state size; the transferred state reflects every operation ordered before the join, and the joiner replays anything ordered after it",
		},
	}, nil
}

// combinedStats sums the replication stats across a domain's nodes.
func combinedStats(d *domain.Domain) replication.Stats {
	var out replication.Stats
	for i := 0; i < d.Nodes(); i++ {
		s := d.Node(i).RM.Stats()
		out.Failovers += s.Failovers
		out.ReplayedInvocations += s.ReplayedInvocations
		out.StateSyncs += s.StateSyncs
		out.Checkpoints += s.Checkpoints
	}
	return out
}
