package experiments

import (
	"fmt"
	"time"

	"eternalgw/internal/cdr"
	"eternalgw/internal/domain"
	"eternalgw/internal/ftmgmt"
	"eternalgw/internal/giop"
	"eternalgw/internal/metrics"
	"eternalgw/internal/orb"
	"eternalgw/internal/replication"
)

const (
	expServerGroup replication.GroupID = 100
	expServerKey                       = "exp/register"
	expBridgeGroup replication.GroupID = 110
	expBridgeKey                       = "exp/bridge"
)

// runE1MultiDomain reproduces figure 1: the invocation paths available
// to a customer, from in-domain communication to the full Santa Barbara
// -> Los Angeles -> New York chain through two gateways and a bridge.
func runE1MultiDomain(cfg Config) (Result, error) {
	ops := cfg.ops(300, 30)

	ny, err := newDomain("new-york", 3)
	if err != nil {
		return Result{}, err
	}
	defer ny.Close()
	la, err := newDomain("los-angeles", 2)
	if err != nil {
		return Result{}, err
	}
	defer la.Close()

	if _, err := deployRegisters(ny, expServerGroup, expServerKey, replication.Active, 2); err != nil {
		return Result{}, err
	}
	if _, err := ny.AddGateway(2, ""); err != nil {
		return Result{}, err
	}
	nyRef, err := ny.PublishIOR("IDL:eternalgw/Register:1.0", []byte(expServerKey))
	if err != nil {
		return Result{}, err
	}

	// Path 1: replicated client inside the NY domain (figure 4c path).
	inDomain := &metrics.Histogram{}
	rm := ny.Node(2).RM
	if err := rm.WaitSynced(domain.DefaultGatewayGroup, 5*time.Second); err != nil {
		return Result{}, err
	}
	for i := 1; i <= ops; i++ {
		start := time.Now()
		_, err := rm.Invoke(domain.DefaultGatewayGroup, 1, expServerGroup,
			replication.OperationID{ChildSeq: uint32(i)},
			giop.Request{RequestID: uint32(i), ResponseExpected: true, ObjectKey: []byte(expServerKey), Operation: "ops"},
			10*time.Second)
		if err != nil {
			return Result{}, fmt.Errorf("in-domain call %d: %w", i, err)
		}
		inDomain.Record(time.Since(start))
	}

	// Path 2: unreplicated client through the NY gateway (figure 3).
	viaGateway := &metrics.Histogram{}
	obj, conn, err := orb.Resolve(nyRef)
	if err != nil {
		return Result{}, err
	}
	defer func() { _ = conn.Close() }()
	for i := 0; i < ops; i++ {
		start := time.Now()
		if _, err := obj.Call("ops", nil, orb.InvokeOptions{}); err != nil {
			return Result{}, fmt.Errorf("gateway call %d: %w", i, err)
		}
		viaGateway.Record(time.Since(start))
	}

	// Path 3: the full figure 1 chain — client -> LA gateway -> LA
	// bridge group -> NY gateway -> NY server group.
	bridgeFactory := func() (replication.Application, error) {
		return domain.NewBridgeApp(nyRef, []byte("exp-bridge"), 10*time.Second), nil
	}
	if err := la.Manager().CreateReplicatedObject(expBridgeGroup, bridgeProps(), bridgeFactory); err != nil {
		return Result{}, err
	}
	if _, err := la.AddGateway(1, ""); err != nil {
		return Result{}, err
	}
	laRef, err := la.PublishIOR("IDL:eternalgw/Register:1.0", []byte(expBridgeKey))
	if err != nil {
		return Result{}, err
	}
	twoDomains := &metrics.Histogram{}
	obj2, conn2, err := orb.Resolve(laRef)
	if err != nil {
		return Result{}, err
	}
	defer func() { _ = conn2.Close() }()
	for i := 0; i < ops; i++ {
		start := time.Now()
		if _, err := obj2.Call("ops", nil, orb.InvokeOptions{}); err != nil {
			return Result{}, fmt.Errorf("two-domain call %d: %w", i, err)
		}
		twoDomains.Record(time.Since(start))
	}

	row := func(name string, h *metrics.Histogram) []string {
		return []string{name, fmt.Sprint(h.Count()),
			h.Mean().Round(time.Microsecond).String(),
			h.Percentile(50).Round(time.Microsecond).String(),
			h.Percentile(99).Round(time.Microsecond).String()}
	}
	return Result{
		ID:      "E1",
		Title:   "Invocation paths across fault tolerance domains",
		Source:  "Figure 1",
		Headers: []string{"path", "ops", "mean", "p50", "p99"},
		Rows: [][]string{
			row("replicated client, same domain", inDomain),
			row("unreplicated client via 1 gateway", viaGateway),
			row("unreplicated client via 2 domains (bridge)", twoDomains),
		},
		Notes: []string{
			"expected shape: latency grows with each domain boundary crossed; all paths complete every operation",
		},
	}, nil
}

func bridgeProps() ftmgmt.Properties {
	return ftmgmt.Properties{
		Style:           replication.Active,
		InitialReplicas: 2,
		MinReplicas:     1,
		ObjectKey:       []byte(expBridgeKey),
		TypeID:          "IDL:eternalgw/Bridge:1.0",
	}
}

// runE2InfrastructureOverhead reproduces figure 2's cost story: what the
// fault tolerance infrastructure (interception + totem + replication
// mechanisms) adds over a plain ORB invocation.
func runE2InfrastructureOverhead(cfg Config) (Result, error) {
	ops := cfg.ops(300, 30)
	payloads := []int{16, 256, 4096}

	// Baseline: plain unreplicated ORB over TCP.
	srv, err := orb.NewServer("127.0.0.1:0")
	if err != nil {
		return Result{}, err
	}
	defer func() { _ = srv.Close() }()
	plain := &RegisterApp{}
	srv.Register([]byte("plain"), plain)
	baseConn, err := orb.Dial(srv.Addr())
	if err != nil {
		return Result{}, err
	}
	defer func() { _ = baseConn.Close() }()

	d, err := newDomain("ny", 3)
	if err != nil {
		return Result{}, err
	}
	defer d.Close()
	if _, err := deployRegisters(d, expServerGroup, expServerKey, replication.Active, 3); err != nil {
		return Result{}, err
	}
	rm := d.Node(2).RM
	if err := rm.JoinGroup(domain.DefaultGatewayGroup, nil); err != nil {
		return Result{}, err
	}
	if err := rm.WaitSynced(domain.DefaultGatewayGroup, 5*time.Second); err != nil {
		return Result{}, err
	}

	var rows [][]string
	reqID := uint32(0)
	for _, size := range payloads {
		payload := make([]byte, size)
		args := OctetSeqArg(payload)

		direct := &metrics.Histogram{}
		for i := 0; i < ops; i++ {
			start := time.Now()
			if _, err := baseConn.Call([]byte("plain"), "echo", args, orb.InvokeOptions{}); err != nil {
				return Result{}, err
			}
			direct.Record(time.Since(start))
		}

		infra := &metrics.Histogram{}
		for i := 0; i < ops; i++ {
			reqID++
			start := time.Now()
			_, err := rm.Invoke(domain.DefaultGatewayGroup, 1, expServerGroup,
				replication.OperationID{ChildSeq: reqID},
				giop.Request{RequestID: reqID, ResponseExpected: true, ObjectKey: []byte(expServerKey), Operation: "echo", Args: args},
				10*time.Second)
			if err != nil {
				return Result{}, err
			}
			infra.Record(time.Since(start))
		}
		ratio := float64(infra.Mean()) / float64(direct.Mean())
		rows = append(rows,
			[]string{fmt.Sprintf("%d B", size), "plain ORB (no replication)", direct.Mean().Round(time.Microsecond).String(), direct.Percentile(99).Round(time.Microsecond).String(), "1.0x"},
			[]string{fmt.Sprintf("%d B", size), "eternal infrastructure, 3 active replicas", infra.Mean().Round(time.Microsecond).String(), infra.Percentile(99).Round(time.Microsecond).String(), fmt.Sprintf("%.1fx", ratio)},
		)
	}
	return Result{
		ID:      "E2",
		Title:   "Fault tolerance infrastructure overhead vs plain ORB",
		Source:  "Figure 2 / Section 2",
		Headers: []string{"payload", "path", "mean", "p99", "vs plain"},
		Rows:    rows,
		Notes: []string{
			"expected shape: the infrastructure costs a constant factor (total ordering + triple execution) that shrinks relative to payload handling as payloads grow",
		},
	}, nil
}

// runE4MessageEncapsulation reproduces figure 4: the three message
// forms — (a) TCP/IIOP between client and gateway, (b) the gateway's
// multicast into the domain, (c) intra-domain multicasts — and what the
// fault tolerance header costs in bytes and encode/decode time.
func runE4MessageEncapsulation(cfg Config) (Result, error) {
	iters := cfg.ops(20000, 2000)
	payloads := []int{0, 64, 1024}
	var rows [][]string
	for _, size := range payloads {
		req := giop.Request{
			RequestID:        7,
			ResponseExpected: true,
			ObjectKey:        []byte(expServerKey),
			Operation:        "echo",
			Args:             OctetSeqArg(make([]byte, size)),
		}
		wire, err := giop.EncodeRequest(cdr.BigEndian, req)
		if err != nil {
			return Result{}, err
		}
		formA := giop.Marshal(wire)

		mkMsg := func(clientID uint64) replication.Message {
			return replication.Message{
				Header: replication.Header{
					Kind:     replication.KindInvocation,
					ClientID: clientID,
					SrcGroup: 1,
					DstGroup: expServerGroup,
					Op:       replication.OperationID{ParentTS: 123456, ChildSeq: 7},
				},
				Payload: formA,
			}
		}
		formB := replication.Encode(mkMsg(42))                         // gateway -> domain
		formC := replication.Encode(mkMsg(replication.UnusedClientID)) // intra-domain

		encDec := func(msg replication.Message) time.Duration {
			start := time.Now()
			for i := 0; i < iters; i++ {
				b := replication.Encode(msg)
				if _, err := replication.Decode(b); err != nil {
					return 0
				}
			}
			return time.Since(start) / time.Duration(iters)
		}
		costB := encDec(mkMsg(42))

		rows = append(rows,
			[]string{fmt.Sprintf("%d B args", size), "(a) IIOP request over TCP", fmt.Sprintf("%d B", len(formA)), "-"},
			[]string{fmt.Sprintf("%d B args", size), "(b) gateway multicast (FT header + IIOP)", fmt.Sprintf("%d B", len(formB)), costB.String()},
			[]string{fmt.Sprintf("%d B args", size), "(c) intra-domain multicast", fmt.Sprintf("%d B", len(formC)), costB.String()},
		)
	}
	return Result{
		ID:      "E4",
		Title:   "Message forms and encapsulation cost",
		Source:  "Figure 4",
		Headers: []string{"workload", "message form", "wire size", "encode+decode"},
		Rows:    rows,
		Notes: []string{
			"forms (b) and (c) differ only in the TCP client identifier field (an unused value intra-domain); the FT header adds a small constant over raw IIOP",
		},
	}, nil
}

// runE5GatewayLoops reproduces figure 5: the gateway's inbound and
// outbound processing, measured as the cost the gateway adds over
// invoking the infrastructure directly from the gateway's node.
func runE5GatewayLoops(cfg Config) (Result, error) {
	ops := cfg.ops(400, 40)
	d, err := newDomain("ny", 3)
	if err != nil {
		return Result{}, err
	}
	defer d.Close()
	if _, err := deployRegisters(d, expServerGroup, expServerKey, replication.Active, 2); err != nil {
		return Result{}, err
	}
	gw, err := d.AddGateway(2, "")
	if err != nil {
		return Result{}, err
	}

	// Direct: same node, straight into the replication mechanisms.
	rm := d.Node(2).RM
	direct := &metrics.Histogram{}
	for i := 1; i <= ops; i++ {
		start := time.Now()
		_, err := rm.Invoke(domain.DefaultGatewayGroup, 99, expServerGroup,
			replication.OperationID{ChildSeq: uint32(i)},
			giop.Request{RequestID: uint32(i), ResponseExpected: true, ObjectKey: []byte(expServerKey), Operation: "ops"},
			10*time.Second)
		if err != nil {
			return Result{}, err
		}
		direct.Record(time.Since(start))
	}

	// Through the gateway: adds figure 5's two loops plus a TCP hop.
	conn, err := orb.Dial(gw.Addr())
	if err != nil {
		return Result{}, err
	}
	defer func() { _ = conn.Close() }()
	through := &metrics.Histogram{}
	for i := 0; i < ops; i++ {
		start := time.Now()
		if _, err := conn.Call([]byte(expServerKey), "ops", nil, orb.InvokeOptions{}); err != nil {
			return Result{}, err
		}
		through.Record(time.Since(start))
	}
	delta := through.Mean() - direct.Mean()
	st := gw.Stats()
	return Result{
		ID:      "E5",
		Title:   "Gateway processing loops",
		Source:  "Figure 5",
		Headers: []string{"path", "mean", "p50", "p99"},
		Rows: [][]string{
			{"infrastructure only (no gateway)", direct.Mean().Round(time.Microsecond).String(), direct.Percentile(50).Round(time.Microsecond).String(), direct.Percentile(99).Round(time.Microsecond).String()},
			{"through gateway (figure 5 loops + TCP)", through.Mean().Round(time.Microsecond).String(), through.Percentile(50).Round(time.Microsecond).String(), through.Percentile(99).Round(time.Microsecond).String()},
			{"gateway-added cost", delta.Round(time.Microsecond).String(), "-", "-"},
		},
		Notes: []string{
			fmt.Sprintf("gateway stats: forwarded=%d replies=%d abandoned=%d", st.RequestsForwarded, st.RepliesReturned, st.RequestsAbandoned),
			"expected shape: the gateway adds a small per-message cost (header construction, socket-to-client mapping, one TCP round trip)",
		},
	}, nil
}
