package memnet

import (
	"errors"
	"testing"
	"time"
)

func recvOne(t *testing.T, e *Endpoint) Packet {
	t.Helper()
	select {
	case p := <-e.Recv():
		return p
	case <-time.After(2 * time.Second):
		t.Fatal("timed out waiting for packet")
		return Packet{}
	}
}

func expectNone(t *testing.T, e *Endpoint) {
	t.Helper()
	select {
	case p := <-e.Recv():
		t.Fatalf("unexpected packet from %q", p.From)
	case <-time.After(20 * time.Millisecond):
	}
}

func TestUnicastDelivery(t *testing.T) {
	n := New()
	a, err := n.Attach("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Attach("b")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send("b", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	p := recvOne(t, b)
	if p.From != "a" || string(p.Payload) != "hello" {
		t.Fatalf("packet = %+v", p)
	}
}

func TestDuplicateAttachRejected(t *testing.T) {
	n := New()
	if _, err := n.Attach("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Attach("a"); !errors.Is(err, ErrDuplicateNode) {
		t.Fatalf("err = %v, want ErrDuplicateNode", err)
	}
}

func TestBroadcastReachesAllIncludingSender(t *testing.T) {
	n := New()
	eps := make([]*Endpoint, 0, 3)
	for _, id := range []NodeID{"a", "b", "c"} {
		e, err := n.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		eps = append(eps, e)
	}
	if err := eps[0].Broadcast([]byte("ring")); err != nil {
		t.Fatal(err)
	}
	for _, e := range eps {
		p := recvOne(t, e)
		if p.From != "a" || string(p.Payload) != "ring" {
			t.Fatalf("%s got %+v", e.ID(), p)
		}
	}
}

func TestCrashBlocksTraffic(t *testing.T) {
	n := New()
	a, _ := n.Attach("a")
	b, _ := n.Attach("b")

	n.Crash("b")
	if err := a.Send("b", []byte("x")); err != nil {
		t.Fatal(err)
	}
	expectNone(t, b)

	// A crashed node cannot send either.
	n.Crash("a")
	if err := a.Send("b", []byte("x")); err == nil {
		t.Fatal("send from crashed node succeeded")
	}

	n.Restart("a")
	n.Restart("b")
	if err := a.Send("b", []byte("y")); err != nil {
		t.Fatal(err)
	}
	if p := recvOne(t, b); string(p.Payload) != "y" {
		t.Fatalf("after restart got %+v", p)
	}
}

func TestPartitionAndHeal(t *testing.T) {
	n := New()
	a, _ := n.Attach("a")
	b, _ := n.Attach("b")
	c, _ := n.Attach("c")

	n.Partition([]NodeID{"a"}, []NodeID{"b", "c"})
	if err := a.Send("b", []byte("x")); err != nil {
		t.Fatal(err)
	}
	expectNone(t, b)

	// Within a partition group traffic flows.
	if err := b.Send("c", []byte("inside")); err != nil {
		t.Fatal(err)
	}
	if p := recvOne(t, c); string(p.Payload) != "inside" {
		t.Fatalf("got %+v", p)
	}

	n.Heal()
	if err := a.Send("b", []byte("healed")); err != nil {
		t.Fatal(err)
	}
	if p := recvOne(t, b); string(p.Payload) != "healed" {
		t.Fatalf("got %+v", p)
	}
}

func TestLossInjectionDropsRoughlyAtRate(t *testing.T) {
	n := New(WithSeed(7), WithLoss(0.5))
	a, _ := n.Attach("a")
	b, _ := n.Attach("b")
	const total = 2000
	for i := 0; i < total; i++ {
		if err := a.Send("b", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	st := n.Stats()
	if st.Lost == 0 || st.Delivered == 0 {
		t.Fatalf("stats = %+v", st)
	}
	got := float64(st.Lost) / float64(total)
	if got < 0.4 || got > 0.6 {
		t.Errorf("loss fraction = %.3f, want ~0.5", got)
	}
	// Drain what was delivered.
	for i := uint64(0); i < st.Delivered; i++ {
		recvOne(t, b)
	}
}

func TestDuplicationInjection(t *testing.T) {
	n := New(WithSeed(3), WithDuplication(1.0))
	a, _ := n.Attach("a")
	b, _ := n.Attach("b")
	if err := a.Send("b", []byte("dup")); err != nil {
		t.Fatal(err)
	}
	first := recvOne(t, b)
	second := recvOne(t, b)
	if string(first.Payload) != "dup" || string(second.Payload) != "dup" {
		t.Fatalf("packets = %+v %+v", first, second)
	}
}

func TestDelayedDeliveryArrives(t *testing.T) {
	n := New(WithSeed(11), WithMaxDelay(5*time.Millisecond))
	a, _ := n.Attach("a")
	b, _ := n.Attach("b")
	if err := a.Send("b", []byte("later")); err != nil {
		t.Fatal(err)
	}
	if p := recvOne(t, b); string(p.Payload) != "later" {
		t.Fatalf("got %+v", p)
	}
}

func TestSendToUnknownNodeCountsBlocked(t *testing.T) {
	n := New()
	a, _ := n.Attach("a")
	if err := a.Send("ghost", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if st := n.Stats(); st.Blocked != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDetachStopsDelivery(t *testing.T) {
	n := New()
	a, _ := n.Attach("a")
	b, _ := n.Attach("b")
	n.Detach("b")
	if err := a.Send("b", []byte("x")); err != nil {
		t.Fatal(err)
	}
	expectNone(t, b)
}

func TestStatsCountDelivered(t *testing.T) {
	n := New()
	a, _ := n.Attach("a")
	b, _ := n.Attach("b")
	for i := 0; i < 5; i++ {
		if err := a.Send("b", nil); err != nil {
			t.Fatal(err)
		}
	}
	st := n.Stats()
	if st.Sent != 5 || st.Delivered != 5 || st.Lost != 0 {
		t.Fatalf("stats = %+v", st)
	}
	for i := 0; i < 5; i++ {
		recvOne(t, b)
	}
}
