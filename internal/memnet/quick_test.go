package memnet

import (
	"testing"
	"testing/quick"
)

// TestQuickStatsConservation property: every submitted datagram is
// accounted for exactly once: delivered, lost, blocked, or overflowed.
func TestQuickStatsConservation(t *testing.T) {
	f := func(seed int64, lossPct, dupPct uint8, sends uint8, crashB bool) bool {
		n := New(WithSeed(seed), WithLoss(float64(lossPct%101)/100), WithDuplication(float64(dupPct%101)/100))
		a, err := n.Attach("a")
		if err != nil {
			return false
		}
		if _, err := n.Attach("b"); err != nil {
			return false
		}
		if crashB {
			n.Crash("b")
		}
		for i := 0; i < int(sends); i++ {
			if err := a.Send("b", []byte{byte(i)}); err != nil {
				// Only a crashed sender may fail, and we never crash a.
				return false
			}
		}
		st := n.Stats()
		// Duplication adds deliveries beyond Sent, so conservation is
		// an inequality on the lower side and exact without dup.
		accounted := st.Delivered + st.Lost + st.Blocked + st.Overflow
		if dupPct%101 == 0 {
			return st.Sent == uint64(sends) && accounted == st.Sent
		}
		return st.Sent == uint64(sends) && accounted >= st.Sent
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickPartitionSymmetry property: partitions block traffic in both
// directions and healing restores both.
func TestQuickPartitionSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		n := New(WithSeed(seed))
		a, _ := n.Attach("a")
		b, _ := n.Attach("b")
		n.Partition([]NodeID{"a"}, []NodeID{"b"})
		_ = a.Send("b", []byte("x"))
		_ = b.Send("a", []byte("y"))
		if st := n.Stats(); st.Blocked != 2 || st.Delivered != 0 {
			return false
		}
		n.Heal()
		_ = a.Send("b", []byte("x"))
		_ = b.Send("a", []byte("y"))
		st := n.Stats()
		return st.Delivered == 2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
