package memnet

import (
	"sort"
	"testing"
	"time"
)

// fakeClock collects AfterFunc callbacks and fires them only when the
// test advances it, proving delayed delivery is driven entirely by the
// injected timer source.
type fakeClock struct {
	fns []func()
}

func (c *fakeClock) AfterFunc(d time.Duration, f func()) { c.fns = append(c.fns, f) }

func (c *fakeClock) fire() {
	fns := c.fns
	c.fns = nil
	for _, f := range fns {
		f()
	}
}

func TestInjectedClockDrivesDelayedDelivery(t *testing.T) {
	clk := &fakeClock{}
	n := New(WithSeed(5), WithMaxDelay(time.Second), WithClock(clk))
	a, err := n.Attach("a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := n.Attach("b")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Send("b", []byte("x")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-b.Recv():
		t.Fatal("datagram delivered before the injected clock fired")
	default:
	}
	if len(clk.fns) != 1 {
		t.Fatalf("scheduled %d callbacks, want 1", len(clk.fns))
	}
	clk.fire()
	select {
	case pkt := <-b.Recv():
		if pkt.From != "a" || string(pkt.Payload) != "x" {
			t.Fatalf("delivered %+v", pkt)
		}
	default:
		t.Fatal("datagram not delivered after the clock fired")
	}
}

func TestNodesSorted(t *testing.T) {
	n := New()
	for _, id := range []NodeID{"z", "a", "m", "b"} {
		if _, err := n.Attach(id); err != nil {
			t.Fatal(err)
		}
	}
	ids := n.Nodes()
	if !sort.SliceIsSorted(ids, func(i, j int) bool { return ids[i] < ids[j] }) {
		t.Fatalf("Nodes() not sorted: %v", ids)
	}
}

// TestBroadcastDeterministicLossPattern pins the determinism contract:
// with the same seed, the same broadcast sequence loses the same
// datagrams, because fan-out consumes the RNG in sorted node order.
func TestBroadcastDeterministicLossPattern(t *testing.T) {
	run := func() []string {
		n := New(WithSeed(42), WithLoss(0.4))
		eps := make(map[NodeID]*Endpoint)
		for _, id := range []NodeID{"p0", "p1", "p2", "p3"} {
			ep, err := n.Attach(id)
			if err != nil {
				t.Fatal(err)
			}
			eps[id] = ep
		}
		var got []string
		for i := 0; i < 32; i++ {
			if err := eps["p0"].Broadcast([]byte{byte(i)}); err != nil {
				t.Fatal(err)
			}
		}
		for _, id := range []NodeID{"p0", "p1", "p2", "p3"} {
			for {
				select {
				case pkt := <-eps[id].Recv():
					got = append(got, string(id)+":"+string(pkt.Payload))
					continue
				default:
				}
				break
			}
		}
		return got
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("delivery counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delivery %d differs: %q vs %q", i, a[i], b[i])
		}
	}
}
