// Package memnet provides a simulated, in-process datagram network used
// as the transport substrate for the Totem protocol and for fault
// tolerance domains built in tests, examples and benchmarks.
//
// The network delivers unicast and broadcast datagrams between attached
// endpoints with best-effort (UDP-like) semantics: configurable loss,
// duplication and delay, plus scripted partitions and node crashes. The
// Totem layer above supplies reliability and total ordering, exactly as
// it does over a real LAN; memnet exists because this reproduction runs
// laptop-scale topologies inside one process (see DESIGN.md section 2).
package memnet

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// NodeID names an endpoint on the network.
type NodeID string

// Clock is the timer source used for delayed delivery. The default
// implementation schedules on the runtime's wall clock; deterministic
// simulation harnesses (internal/sim) inject a virtual clock whose
// callbacks fire from a single-threaded event loop, so a seeded run
// replays the same delivery schedule byte for byte.
type Clock interface {
	// AfterFunc arranges for f to run once d has elapsed.
	AfterFunc(d time.Duration, f func())
}

// realClock is the default Clock: the runtime timer wheel.
type realClock struct{}

func (realClock) AfterFunc(d time.Duration, f func()) {
	// The wall clock is this type's whole purpose: it is the documented
	// real-time default, and deterministic harnesses swap in a virtual
	// Clock instead of using it.
	//lint:allow simdet realClock is the real-time default behind the injectable Clock seam
	time.AfterFunc(d, f)
}

// Packet is one datagram.
type Packet struct {
	From    NodeID
	Payload []byte
}

// Stats counts network activity.
type Stats struct {
	Sent      uint64 // datagrams submitted (one per destination)
	Delivered uint64 // datagrams placed in an inbox
	Lost      uint64 // dropped by loss injection
	Blocked   uint64 // dropped by partition or crash
	Overflow  uint64 // dropped because an inbox was full
}

// Errors reported by the package.
var (
	ErrDuplicateNode = errors.New("memnet: node id already attached")
	ErrDetached      = errors.New("memnet: endpoint is detached")
	ErrUnknownNode   = errors.New("memnet: unknown node")
)

const defaultInboxSize = 4096

// Network is a simulated datagram network. All methods are safe for
// concurrent use.
type Network struct {
	mu        sync.Mutex
	nodes     map[NodeID]*Endpoint
	rng       *rand.Rand
	clock     Clock
	lossRate  float64
	dupRate   float64
	maxDelay  time.Duration
	partition map[NodeID]int // partition group per node; absent = group 0
	crashed   map[NodeID]bool

	sent, delivered, lost, blocked, overflow atomic.Uint64
}

// Option configures a Network.
type Option interface{ apply(*Network) }

type optionFunc func(*Network)

func (f optionFunc) apply(n *Network) { f(n) }

// WithSeed sets the RNG seed used for loss, duplication and delay,
// making fault injection reproducible.
func WithSeed(seed int64) Option {
	return optionFunc(func(n *Network) { n.rng = rand.New(rand.NewSource(seed)) })
}

// WithLoss sets the probability in [0,1] that any datagram is dropped.
func WithLoss(rate float64) Option {
	return optionFunc(func(n *Network) { n.lossRate = rate })
}

// WithDuplication sets the probability in [0,1] that a datagram is
// delivered twice.
func WithDuplication(rate float64) Option {
	return optionFunc(func(n *Network) { n.dupRate = rate })
}

// WithMaxDelay sets an upper bound on random per-datagram delivery delay.
// Zero (the default) delivers synchronously, which keeps tests fast and
// deterministic.
func WithMaxDelay(d time.Duration) Option {
	return optionFunc(func(n *Network) { n.maxDelay = d })
}

// WithClock sets the timer source for delayed delivery. The default is
// the runtime's wall clock; simulation harnesses supply a virtual clock
// so delivery timing is part of the deterministic event schedule.
func WithClock(c Clock) Option {
	return optionFunc(func(n *Network) { n.clock = c })
}

// New creates a network.
func New(opts ...Option) *Network {
	n := &Network{
		nodes:     make(map[NodeID]*Endpoint),
		rng:       rand.New(rand.NewSource(1)),
		clock:     realClock{},
		partition: make(map[NodeID]int),
		crashed:   make(map[NodeID]bool),
	}
	for _, o := range opts {
		o.apply(n)
	}
	return n
}

// Attach adds an endpoint with the given id.
func (n *Network) Attach(id NodeID) (*Endpoint, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.nodes[id]; ok {
		return nil, fmt.Errorf("%w: %q", ErrDuplicateNode, id)
	}
	e := &Endpoint{
		id:    id,
		net:   n,
		inbox: make(chan Packet, defaultInboxSize),
	}
	n.nodes[id] = e
	delete(n.crashed, id)
	return e, nil
}

// Detach removes an endpoint; its inbox stops receiving.
func (n *Network) Detach(id NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.nodes, id)
}

// Crash marks a node as crashed: it neither sends nor receives until
// Restart. The endpoint object stays valid so the owning process can
// observe the crash through send errors.
func (n *Network) Crash(id NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.crashed[id] = true
}

// Restart clears the crashed state of a node.
func (n *Network) Restart(id NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.crashed, id)
}

// Crashed reports whether a node is currently crashed.
func (n *Network) Crashed(id NodeID) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.crashed[id]
}

// Partition splits the network: each slice of ids becomes an isolated
// group; nodes not listed join group 0 (together with the first slice's
// complement). Delivery crosses group boundaries in neither direction.
func (n *Network) Partition(groups ...[]NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partition = make(map[NodeID]int)
	for i, g := range groups {
		for _, id := range g {
			n.partition[id] = i + 1
		}
	}
}

// Heal removes all partitions.
func (n *Network) Heal() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partition = make(map[NodeID]int)
}

// SetLoss updates the loss rate at runtime.
func (n *Network) SetLoss(rate float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.lossRate = rate
}

// Nodes returns the ids of all attached endpoints in sorted order. The
// ordering is part of the determinism contract: code that fans out over
// the node set (Broadcast, simulation drains) must consume the RNG in
// the same per-destination order on every run with the same seed.
func (n *Network) Nodes() []NodeID {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.sortedNodesLocked()
}

// sortedNodesLocked returns the attached ids sorted. Callers hold mu.
func (n *Network) sortedNodesLocked() []NodeID {
	out := make([]NodeID, 0, len(n.nodes))
	for id := range n.nodes {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Stats returns a snapshot of the network counters.
func (n *Network) Stats() Stats {
	return Stats{
		Sent:      n.sent.Load(),
		Delivered: n.delivered.Load(),
		Lost:      n.lost.Load(),
		Blocked:   n.blocked.Load(),
		Overflow:  n.overflow.Load(),
	}
}

// send routes one datagram from -> to, applying crash, partition, loss,
// duplication and delay. Callers hold no locks.
func (n *Network) send(from, to NodeID, payload []byte) {
	n.sent.Add(1)

	n.mu.Lock()
	dst, ok := n.nodes[to]
	if !ok || n.crashed[from] || n.crashed[to] || n.partition[from] != n.partition[to] {
		n.mu.Unlock()
		n.blocked.Add(1)
		return
	}
	copies := 1
	if n.lossRate > 0 && n.rng.Float64() < n.lossRate {
		copies = 0
	} else if n.dupRate > 0 && n.rng.Float64() < n.dupRate {
		copies = 2
	}
	var delay time.Duration
	if n.maxDelay > 0 {
		delay = time.Duration(n.rng.Int63n(int64(n.maxDelay)))
	}
	n.mu.Unlock()

	if copies == 0 {
		n.lost.Add(1)
		return
	}
	pkt := Packet{From: from, Payload: payload}
	for i := 0; i < copies; i++ {
		if delay > 0 {
			n.clock.AfterFunc(delay, func() { n.deliver(dst, pkt) })
		} else {
			n.deliver(dst, pkt)
		}
	}
}

func (n *Network) deliver(dst *Endpoint, pkt Packet) {
	select {
	case dst.inbox <- pkt:
		n.delivered.Add(1)
	default:
		n.overflow.Add(1)
	}
}

// Endpoint is one attached node's interface to the network.
type Endpoint struct {
	id    NodeID
	net   *Network
	inbox chan Packet
}

// ID returns the endpoint's node id.
func (e *Endpoint) ID() NodeID { return e.id }

// Recv returns the endpoint's inbox channel.
func (e *Endpoint) Recv() <-chan Packet { return e.inbox }

// Send transmits a unicast datagram. The payload is not copied; callers
// must not mutate it after sending.
func (e *Endpoint) Send(to NodeID, payload []byte) error {
	if e.net.Crashed(e.id) {
		return fmt.Errorf("memnet: node %q crashed", e.id)
	}
	e.net.send(e.id, to, payload)
	return nil
}

// Broadcast transmits a datagram to every attached node, including the
// sender itself (matching IP-multicast loopback semantics that Totem
// relies on to self-deliver its own messages in total order).
func (e *Endpoint) Broadcast(payload []byte) error {
	if e.net.Crashed(e.id) {
		return fmt.Errorf("memnet: node %q crashed", e.id)
	}
	e.net.mu.Lock()
	ids := e.net.sortedNodesLocked()
	e.net.mu.Unlock()
	for _, id := range ids {
		e.net.send(e.id, id, payload)
	}
	return nil
}
