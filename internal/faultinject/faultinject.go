// Package faultinject provides scripted fault schedules for experiments
// and tests: actions (crash a node, kill a gateway, partition the
// network) fired when a workload reaches a given operation count. Step
// triggers are counted rather than timed so experiments are reproducible
// regardless of machine speed.
package faultinject

import (
	"sort"
	"sync"
)

// Step is one scheduled fault: Action fires the first time the
// operation counter reaches AtOp.
type Step struct {
	// AtOp is the 1-based operation count that triggers the action.
	AtOp uint64
	// Name describes the fault for reports.
	Name string
	// Action performs the fault.
	Action func()
}

// FiredStep is one entry of a plan's event log: which step fired and at
// which operation count. With count-based triggers and a seeded
// generator the log is a pure function of (seed, workload), which is
// what makes fault schedules replayable.
type FiredStep struct {
	Name string
	AtOp uint64
}

// Plan is an ordered fault schedule. Create with NewPlan; drive it by
// calling Tick once per completed operation. Plan is safe for concurrent
// use.
type Plan struct {
	mu    sync.Mutex
	steps []Step
	next  int
	ops   uint64
	fired []FiredStep
}

// NewPlan builds a plan from steps (sorted by AtOp).
func NewPlan(steps ...Step) *Plan {
	sorted := append([]Step(nil), steps...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].AtOp < sorted[j].AtOp })
	return &Plan{steps: sorted}
}

// Tick records one completed operation and fires any step whose
// threshold has been reached. Actions run on the caller's goroutine, in
// schedule order.
func (p *Plan) Tick() {
	p.mu.Lock()
	p.ops++
	var due []Step
	for p.next < len(p.steps) && p.steps[p.next].AtOp <= p.ops {
		due = append(due, p.steps[p.next])
		p.fired = append(p.fired, FiredStep{Name: p.steps[p.next].Name, AtOp: p.ops})
		p.next++
	}
	p.mu.Unlock()
	for _, s := range due {
		s.Action()
	}
}

// Ops returns the number of operations ticked so far.
func (p *Plan) Ops() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.ops
}

// Fired lists the names of the steps that have fired, in order.
func (p *Plan) Fired() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, len(p.fired))
	for i, f := range p.fired {
		out[i] = f.Name
	}
	return out
}

// FiredAt returns the plan's event log: every fired step with the
// operation count at which it actually fired, in firing order.
func (p *Plan) FiredAt() []FiredStep {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]FiredStep(nil), p.fired...)
}

// Steps returns a copy of the plan's schedule (sorted by AtOp), fired or
// not — the shape a harness dumps alongside a failing trace so the
// schedule of a seed can be inspected without re-running it.
func (p *Plan) Steps() []FiredStep {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]FiredStep, len(p.steps))
	for i, s := range p.steps {
		out[i] = FiredStep{Name: s.Name, AtOp: s.AtOp}
	}
	return out
}

// Done reports whether every step has fired.
func (p *Plan) Done() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.next >= len(p.steps)
}
