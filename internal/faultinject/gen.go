package faultinject

import (
	"fmt"
	"math/rand"
)

// NewRand returns the package's canonical deterministic RNG for a seed.
// Every consumer that wants reproducible fault schedules derives all of
// its randomness from one of these (never from the global rand, and
// never from time.Now), so a seed fully determines the schedule.
func NewRand(seed uint64) *rand.Rand {
	return rand.New(rand.NewSource(int64(Split(seed, 0))))
}

// Split derives an independent sub-seed from (seed, stream) with a
// splitmix64 finalizer. Harnesses give each nondeterminism source — the
// network, the schedule, the workload — its own stream so pinning one
// knob does not shift the draws of the others.
func Split(seed, stream uint64) uint64 {
	z := seed + 0x9e3779b97f4a7c15*(stream+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// StepSpec describes one randomized step for Generate: the action fires
// at an operation count drawn uniformly from [MinOp, MaxOp]. MaxOp <
// MinOp is treated as MinOp (a fixed trigger).
type StepSpec struct {
	Name   string
	MinOp  uint64
	MaxOp  uint64
	Action func()
}

// Generate draws a concrete plan from specs using rng. Draw order is
// the spec order, so the same rng state always yields the same
// schedule; the returned plan sorts the drawn steps by trigger as
// NewPlan does.
func Generate(rng *rand.Rand, specs ...StepSpec) *Plan {
	steps := make([]Step, 0, len(specs))
	for _, sp := range specs {
		at := sp.MinOp
		if sp.MaxOp > sp.MinOp {
			at = sp.MinOp + uint64(rng.Int63n(int64(sp.MaxOp-sp.MinOp+1)))
		}
		if at == 0 {
			at = 1
		}
		steps = append(steps, Step{AtOp: at, Name: sp.Name, Action: sp.Action})
	}
	return NewPlan(steps...)
}

// Describe renders a schedule (fired or planned) as one line per step,
// the form harnesses embed in failure artifacts.
func Describe(steps []FiredStep) string {
	out := ""
	for _, s := range steps {
		out += fmt.Sprintf("@%d %s\n", s.AtOp, s.Name)
	}
	return out
}
