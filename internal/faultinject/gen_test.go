package faultinject

import (
	"reflect"
	"testing"
)

// TestGenerateDeterministic is the determinism regression gate for the
// seeded generator: the same seed must produce the identical schedule
// and, driven by the same workload, the identical event log.
func TestGenerateDeterministic(t *testing.T) {
	build := func(seed uint64) (*Plan, []string) {
		var log []string
		rng := NewRand(seed)
		p := Generate(rng,
			StepSpec{Name: "partition", MinOp: 5, MaxOp: 40, Action: func() { log = append(log, "partition") }},
			StepSpec{Name: "crash", MinOp: 10, MaxOp: 60, Action: func() { log = append(log, "crash") }},
			StepSpec{Name: "heal", MinOp: 60, MaxOp: 90, Action: func() { log = append(log, "heal") }},
		)
		for i := 0; i < 100; i++ {
			p.Tick()
		}
		return p, log
	}

	p1, log1 := build(1234)
	p2, log2 := build(1234)
	if !reflect.DeepEqual(p1.Steps(), p2.Steps()) {
		t.Fatalf("same seed produced different schedules:\n%v\n%v", p1.Steps(), p2.Steps())
	}
	if !reflect.DeepEqual(p1.FiredAt(), p2.FiredAt()) {
		t.Fatalf("same seed produced different event logs:\n%v\n%v", p1.FiredAt(), p2.FiredAt())
	}
	if !reflect.DeepEqual(log1, log2) {
		t.Fatalf("same seed fired actions in different orders: %v vs %v", log1, log2)
	}
	if !p1.Done() {
		t.Fatalf("plan incomplete after 100 ops: %v", p1.FiredAt())
	}

	p3, _ := build(99)
	if reflect.DeepEqual(p1.Steps(), p3.Steps()) {
		t.Fatalf("different seeds produced the identical schedule %v", p1.Steps())
	}
}

func TestSplitStreamsIndependent(t *testing.T) {
	if Split(7, 0) == Split(7, 1) {
		t.Fatal("streams 0 and 1 collide")
	}
	if Split(7, 0) != Split(7, 0) {
		t.Fatal("Split is not a pure function")
	}
}

func TestFiredAtRecordsOpCounts(t *testing.T) {
	p := NewPlan(
		Step{AtOp: 2, Name: "a", Action: func() {}},
		Step{AtOp: 5, Name: "b", Action: func() {}},
	)
	for i := 0; i < 6; i++ {
		p.Tick()
	}
	got := p.FiredAt()
	want := []FiredStep{{Name: "a", AtOp: 2}, {Name: "b", AtOp: 5}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("event log %v, want %v", got, want)
	}
}
