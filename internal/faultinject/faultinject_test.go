package faultinject

import (
	"reflect"
	"sync"
	"testing"
)

func TestStepsFireAtThresholds(t *testing.T) {
	var fired []int
	p := NewPlan(
		Step{AtOp: 3, Name: "three", Action: func() { fired = append(fired, 3) }},
		Step{AtOp: 1, Name: "one", Action: func() { fired = append(fired, 1) }},
		Step{AtOp: 5, Name: "five", Action: func() { fired = append(fired, 5) }},
	)
	for i := 0; i < 6; i++ {
		p.Tick()
	}
	if !reflect.DeepEqual(fired, []int{1, 3, 5}) {
		t.Fatalf("fired = %v", fired)
	}
	if !reflect.DeepEqual(p.Fired(), []string{"one", "three", "five"}) {
		t.Fatalf("names = %v", p.Fired())
	}
	if !p.Done() {
		t.Fatal("plan not done")
	}
	if p.Ops() != 6 {
		t.Fatalf("ops = %d", p.Ops())
	}
}

func TestStepFiresOnce(t *testing.T) {
	count := 0
	p := NewPlan(Step{AtOp: 2, Name: "x", Action: func() { count++ }})
	for i := 0; i < 10; i++ {
		p.Tick()
	}
	if count != 1 {
		t.Fatalf("fired %d times", count)
	}
}

func TestMultipleStepsSameThreshold(t *testing.T) {
	var fired []string
	p := NewPlan(
		Step{AtOp: 2, Name: "a", Action: func() { fired = append(fired, "a") }},
		Step{AtOp: 2, Name: "b", Action: func() { fired = append(fired, "b") }},
	)
	p.Tick()
	if len(fired) != 0 {
		t.Fatalf("fired early: %v", fired)
	}
	p.Tick()
	if !reflect.DeepEqual(fired, []string{"a", "b"}) {
		t.Fatalf("fired = %v", fired)
	}
}

func TestEmptyPlanIsDone(t *testing.T) {
	p := NewPlan()
	if !p.Done() {
		t.Fatal("empty plan not done")
	}
	p.Tick() // must not panic
}

func TestConcurrentTicks(t *testing.T) {
	var mu sync.Mutex
	count := 0
	p := NewPlan(Step{AtOp: 50, Name: "mid", Action: func() {
		mu.Lock()
		count++
		mu.Unlock()
	}})
	var wg sync.WaitGroup
	for w := 0; w < 10; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				p.Tick()
			}
		}()
	}
	wg.Wait()
	if count != 1 {
		t.Fatalf("fired %d times under concurrency", count)
	}
	if p.Ops() != 100 {
		t.Fatalf("ops = %d", p.Ops())
	}
}
