package totem

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"eternalgw/internal/cdr"
	"eternalgw/internal/memnet"
	"eternalgw/internal/obs"
)

// EventType distinguishes the events a node emits.
type EventType uint8

// Event types. Deliveries and configuration changes arrive on one channel
// so the application observes membership changes ordered with respect to
// message deliveries (virtual synchrony).
const (
	EventDeliver EventType = iota + 1
	EventConfig
)

// Event is one ordered event: a message delivery or a ring installation.
type Event struct {
	Type     EventType
	Delivery Delivery     // valid when Type == EventDeliver
	Config   ConfigChange // valid when Type == EventConfig
}

// ErrStopped is returned by Multicast after Stop.
var ErrStopped = errors.New("totem: node stopped")

const eventBufSize = 4096

// Node is one member of a Totem ring. Create with Start, stop with Stop.
// All protocol state is owned by a single goroutine; the public methods
// communicate with it through channels.
type Node struct {
	cfg Config
	ep  Transport

	events chan Event
	sendq  chan []byte
	stop   chan struct{}
	done   chan struct{}

	mu         sync.Mutex
	curMembers []memnet.NodeID
	curRingID  uint64

	broadcastN     atomic.Uint64
	deliveredN     atomic.Uint64
	retransmittedN atomic.Uint64
	skippedN       atomic.Uint64
	tokenPassN     atomic.Uint64
	reconfigN      atomic.Uint64
	packedMsgN     atomic.Uint64
	packedPartN    atomic.Uint64
	forwardedN     atomic.Uint64
	leaderBatchN   atomic.Uint64
	promotionN     atomic.Uint64
	demotionN      atomic.Uint64
	// pendingN mirrors len(pending) (owned by the run goroutine) so
	// Backlog can report send-queue depth without touching protocol state.
	pendingN atomic.Int64

	// protocol state, owned by the run goroutine
	ring         []memnet.NodeID
	ringID       uint64
	gathering    bool
	buffer       map[uint64]regularMsg
	skipped      map[uint64]bool
	deliveredSeq uint64 // contiguous received-and-delivered watermark (local aru)
	highest      uint64
	pending      [][]byte
	lastTokenID  uint64

	lastSentToken *token
	tokenResendAt time.Time

	heldToken  *token
	holdUntil  time.Time
	workInHold bool
	// lastTrafficAt is when this node last saw application traffic (a
	// new regular broadcast, local or remote). Within Config.ActiveWindow
	// of it the token is forwarded without an idle hold.
	lastTrafficAt time.Time

	alive          map[memnet.NodeID]bool
	joinHighest    map[memnet.NodeID]uint64
	joinAru        map[memnet.NodeID]uint64
	proposedRingID uint64
	gatherDeadline time.Time

	failDeadline time.Time

	// Leader-ordered fast-path state (Config.Ordering == OrderingLeader),
	// owned by the run goroutine like the rest of the protocol state.
	fpActive   bool          // a sequencer is installed for the current ring
	leaderID   memnet.NodeID // the installed sequencer
	promoteSeq uint64        // ring-ordered sequence the mode switch was installed at

	// sequencer-side state
	leaderSeq    uint64                             // last sequence number assigned
	leaderStable uint64                             // stability horizon (min aru over the ring)
	memberAru    map[memnet.NodeID]uint64           // latest acked aru per member
	memberAckAt  map[memnet.NodeID]time.Time        // when each member last acked (liveness)
	fwdSeen      map[memnet.NodeID]uint64           // contiguous forward watermark per origin
	fwdStash     map[memnet.NodeID]map[uint64]forwardMsg // out-of-order forwards awaiting their gap
	fwdLast      map[memnet.NodeID]uint64           // seq of each origin's most recent batch
	batchOrigin  map[uint64]batchRef                // seq -> forward identity, for nak retransmission
	heartbeatAt  time.Time

	// follower-side state
	fwdNext       uint64        // next forward number to issue this epoch
	awaiting      []awaitingFwd // forwards sent but not yet seen ordered
	awaitingParts int           // payloads inside awaiting (backlog accounting)
	fwdResendAt   time.Time
	ackDueAt      time.Time

	// mirrors for Fastpath() and the stability-lag gauge
	curLeader    memnet.NodeID // under mu
	curLeaderSeq uint64        // under mu
	fpSeqA       atomic.Uint64
	fpStableA    atomic.Uint64
}

// batchRef identifies the forward a sequence number ordered.
type batchRef struct {
	origin memnet.NodeID
	fwd    uint64
}

// awaitingFwd is a forward this follower sent to the sequencer and has
// not yet seen come back ordered.
type awaitingFwd struct {
	fwd     uint64
	parts   [][]byte
	resends int
}

// Start creates a node and launches its protocol goroutine. The founding
// members immediately run a membership exchange to install the first
// ring, so callers should wait for the initial EventConfig before
// multicasting if they need the full ring assembled.
func Start(cfg Config) (*Node, error) {
	cfg.applyDefaults()
	if cfg.Endpoint == nil {
		return nil, errors.New("totem: config needs an endpoint")
	}
	if cfg.ID == "" {
		cfg.ID = cfg.Endpoint.ID()
	}
	if cfg.ID != cfg.Endpoint.ID() {
		return nil, fmt.Errorf("totem: id %q does not match endpoint %q", cfg.ID, cfg.Endpoint.ID())
	}
	n := &Node{
		cfg:     cfg,
		ep:      cfg.Endpoint,
		events:  make(chan Event, eventBufSize),
		sendq:   make(chan []byte, 1024),
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
		buffer:  make(map[uint64]regularMsg),
		skipped: make(map[uint64]bool),
	}
	n.registerMetrics(cfg.Metrics)
	go n.run()
	return n, nil
}

// registerMetrics publishes the protocol counters on the registry.
func (n *Node) registerMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	lbl := obs.Labels{"node": string(n.cfg.ID)}
	for _, c := range []struct {
		name, help string
		fn         func() uint64
	}{
		{"eternalgw_totem_broadcast_total", "Regular messages this node originated.", n.broadcastN.Load},
		{"eternalgw_totem_delivered_total", "Regular messages delivered to the application in total order.", n.deliveredN.Load},
		{"eternalgw_totem_retransmitted_total", "Retransmissions this node served.", n.retransmittedN.Load},
		{"eternalgw_totem_skipped_total", "Sequence numbers declared unrecoverable and skipped.", n.skippedN.Load},
		{"eternalgw_totem_token_passes_total", "Tokens this node forwarded.", n.tokenPassN.Load},
		{"eternalgw_totem_reconfigs_total", "Ring installations this node participated in.", n.reconfigN.Load},
		{"eternalgw_totem_packed_msgs_total", "Packed datagrams this node originated.", n.packedMsgN.Load},
		{"eternalgw_totem_packed_parts_total", "Payloads carried inside packed datagrams.", n.packedPartN.Load},
		{"eternalgw_totem_fastpath_forwarded_total", "Payloads forwarded to a sequencer in leader mode.", n.forwardedN.Load},
		{"eternalgw_totem_fastpath_batches_total", "Ordered batches this node multicast as sequencer.", n.leaderBatchN.Load},
		{"eternalgw_totem_fastpath_promotions_total", "Leader epochs installed on this node.", n.promotionN.Load},
		{"eternalgw_totem_fastpath_demotions_total", "Falls from leader mode back to ring rotation.", n.demotionN.Load},
	} {
		reg.CounterFunc(c.name, c.help, lbl, c.fn)
	}
	reg.GaugeFunc("eternalgw_totem_fastpath_stability_lag", "Sequence numbers the sequencer has assigned beyond its stability horizon.", lbl, n.stabilityLag)
}

// ID returns the node's identity.
func (n *Node) ID() memnet.NodeID { return n.cfg.ID }

// Events returns the ordered event stream. The consumer must keep
// draining it; a full event buffer blocks the protocol goroutine, which
// stalls the ring (and will eventually look like a failure to peers).
func (n *Node) Events() <-chan Event { return n.events }

// Multicast submits a payload for totally-ordered delivery to every ring
// member (including this node). The payload must not be mutated after
// the call.
func (n *Node) Multicast(payload []byte) error {
	select {
	case <-n.stop:
		return ErrStopped
	default:
	}
	select {
	case n.sendq <- payload:
		return nil
	case <-n.stop:
		return ErrStopped
	}
}

// Backlog reports the send-side backpressure signal: how many payloads
// are queued for ordered broadcast (submitted but not yet consumed by a
// token visit) against the submission queue's capacity. A backlog near
// the capacity means Multicast callers are about to block — the domain
// is not keeping up with offered load.
func (n *Node) Backlog() (queued, capacity int) {
	return len(n.sendq) + int(n.pendingN.Load()), cap(n.sendq)
}

// Members returns the most recently installed ring.
func (n *Node) Members() []memnet.NodeID {
	n.mu.Lock()
	defer n.mu.Unlock()
	out := make([]memnet.NodeID, len(n.curMembers))
	copy(out, n.curMembers)
	return out
}

// RingID returns the id of the most recently installed ring.
func (n *Node) RingID() uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.curRingID
}

// Stats returns a snapshot of protocol counters.
func (n *Node) Stats() Stats {
	return Stats{
		Broadcast:     n.broadcastN.Load(),
		Delivered:     n.deliveredN.Load(),
		Retransmitted: n.retransmittedN.Load(),
		Skipped:       n.skippedN.Load(),
		TokenPasses:   n.tokenPassN.Load(),
		Reconfigs:     n.reconfigN.Load(),
		PackedMsgs:    n.packedMsgN.Load(),
		PackedParts:   n.packedPartN.Load(),
		Forwarded:     n.forwardedN.Load(),
		LeaderBatches: n.leaderBatchN.Load(),
		Promotions:    n.promotionN.Load(),
		Demotions:     n.demotionN.Load(),
		StabilityLag:  n.stabilityLagN(),
	}
}

// stabilityLagN reports how far the sequencer has assigned sequence
// numbers beyond its stability horizon (zero off the fast path).
func (n *Node) stabilityLagN() uint64 {
	seq, stable := n.fpSeqA.Load(), n.fpStableA.Load()
	if seq > stable {
		return seq - stable
	}
	return 0
}

func (n *Node) stabilityLag() float64 { return float64(n.stabilityLagN()) }

// Fastpath reports the installed sequencer for the current ring, if the
// leader-ordered fast path is active: the leader's identity and the
// agreed ring-ordered sequence number the mode switch was installed at.
func (n *Node) Fastpath() (leader memnet.NodeID, startSeq uint64, ok bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.curLeader == "" {
		return "", 0, false
	}
	return n.curLeader, n.curLeaderSeq, true
}

// Stop terminates the protocol goroutine and waits for it to exit.
// Stop is idempotent.
func (n *Node) Stop() {
	select {
	case <-n.stop:
	default:
		close(n.stop)
	}
	<-n.done
}

// run is the protocol event loop; it exclusively owns all ring state.
func (n *Node) run() {
	defer close(n.done)

	// Bootstrap: gather with the configured founding members as the
	// initial candidate set, so all founders install the same first ring
	// without waiting out a failure timeout.
	n.startGather()
	for _, m := range n.cfg.Members {
		n.alive[m] = true
	}

	timer := time.NewTimer(time.Hour)
	defer timer.Stop()
	for {
		n.rearm(timer)
		select {
		case <-n.stop:
			return
		case pkt := <-n.ep.Recv():
			n.handlePacket(pkt)
		case payload := <-n.sendq:
			n.pending = append(n.pending, payload)
			n.pendingN.Store(int64(len(n.pending)))
			n.drainSendq()
			if n.fpActive {
				// Leader mode: no token to wait for. The sequencer orders
				// its own submissions directly; followers forward theirs
				// to it immediately. Token pacing (lastTrafficAt) is
				// deliberately not touched — it is a no-op on the fast
				// path, so a demotion right after this submission starts
				// ring rotation from a clean pacing state instead of
				// double-delaying the first post-switch rotation.
				if n.leaderID == n.cfg.ID {
					n.leaderOrderPending()
				} else {
					n.forwardPending()
				}
				continue
			}
			n.lastTrafficAt = time.Now()
			if n.heldToken != nil {
				// The token is parked here idle; broadcast immediately
				// and pass it on.
				t := *n.heldToken
				n.heldToken = nil
				n.holdUntil = time.Time{}
				n.processToken(t)
			}
		case <-timer.C:
			n.handleTimeouts(time.Now())
		}
	}
}

// drainSendq moves every queued submission into pending without blocking.
func (n *Node) drainSendq() {
	for {
		select {
		case p := <-n.sendq:
			n.pending = append(n.pending, p)
			n.pendingN.Store(int64(len(n.pending)))
		default:
			return
		}
	}
}

// rearm points the shared timer at the earliest pending deadline.
func (n *Node) rearm(timer *time.Timer) {
	next := time.Time{}
	earliest := func(t time.Time) {
		if t.IsZero() {
			return
		}
		if next.IsZero() || t.Before(next) {
			next = t
		}
	}
	earliest(n.failDeadline)
	earliest(n.tokenResendAt)
	earliest(n.gatherDeadline)
	earliest(n.heartbeatAt)
	earliest(n.fwdResendAt)
	earliest(n.ackDueAt)
	if n.heldToken != nil {
		earliest(n.holdUntil)
	}
	if !timer.Stop() {
		select {
		case <-timer.C:
		default:
		}
	}
	if next.IsZero() {
		timer.Reset(time.Hour)
		return
	}
	d := time.Until(next)
	if d < 0 {
		d = 0
	}
	timer.Reset(d)
}

func (n *Node) handleTimeouts(now time.Time) {
	if n.heldToken != nil && !n.holdUntil.After(now) {
		n.finishHold()
	}
	if !n.tokenResendAt.IsZero() && !n.tokenResendAt.After(now) && n.lastSentToken != nil {
		// No evidence of progress since forwarding: resend the token.
		n.broadcastRaw(encodeToken(*n.lastSentToken))
		n.tokenResendAt = now.Add(n.cfg.TokenRetransmit)
	}
	if !n.gatherDeadline.IsZero() && !n.gatherDeadline.After(now) {
		n.installRing()
	}
	if !n.heartbeatAt.IsZero() && !n.heartbeatAt.After(now) {
		n.leaderHeartbeat(now)
	}
	if !n.fwdResendAt.IsZero() && !n.fwdResendAt.After(now) {
		n.resendForwards(now)
	}
	if !n.ackDueAt.IsZero() && !n.ackDueAt.After(now) {
		n.sendAck(now)
	}
	if !n.failDeadline.IsZero() && !n.failDeadline.After(now) && !n.gathering {
		n.startGather()
	}
}

func (n *Node) handlePacket(pkt memnet.Packet) {
	if len(pkt.Payload) == 0 {
		return
	}
	r := cdr.NewReader(pkt.Payload, cdr.BigEndian)
	switch r.ReadOctet() {
	case kindRegular:
		if m, err := decodeRegular(r); err == nil {
			n.handleRegular(m)
		}
	case kindPacked:
		if m, err := decodePacked(r); err == nil {
			n.handleRegular(m)
		}
	case kindToken:
		if t, err := decodeToken(r); err == nil {
			n.handleToken(t)
		}
	case kindJoin:
		if j, err := decodeJoin(r); err == nil {
			n.handleJoin(j)
		}
	case kindForward:
		if f, err := decodeForward(r); err == nil {
			n.handleForward(f)
		}
	case kindBatch:
		if b, err := decodeBatch(r); err == nil {
			n.handleBatch(b)
		}
	case kindAck:
		if a, err := decodeAck(r); err == nil {
			n.handleAck(a)
		}
	case kindPromote:
		if p, err := decodePromote(r); err == nil {
			n.handlePromote(p)
		}
	}
}

func (n *Node) handleRegular(m regularMsg) {
	if m.RingID != n.ringID {
		if m.RingID > n.ringID && !n.gathering {
			// Traffic from a newer configuration: we missed a
			// membership change; rejoin.
			n.startGather()
		} else if m.RingID < n.ringID && !n.inRing(m.Sender) && !n.gathering {
			// Traffic from a concurrent foreign ring (partition
			// healing): trigger a merge.
			n.startGather()
		}
		return
	}
	if !n.inRing(m.Sender) {
		// A foreign ring that happens to share our ring id (both sides
		// of a partition increment in lockstep): merge, and do not let
		// its sequence numbers corrupt our buffer.
		if !n.gathering {
			n.startGather()
		}
		return
	}
	if m.Seq <= n.deliveredSeq || n.skipped[m.Seq] {
		return // already delivered or declared unrecoverable
	}
	if _, ok := n.buffer[m.Seq]; ok {
		return // duplicate
	}
	// Genuinely new ring traffic counts as liveness; duplicates and
	// stale retransmissions above do not, so a wedged ring (dead token
	// holder, endlessly resent stale token) still trips the fail timer.
	n.touchLiveness()
	if !n.fpActive {
		// Token pacing is a no-op in leader mode: lastTrafficAt feeds
		// only the ring-mode hold decision, and leader-mode traffic must
		// not skew the first post-demotion rotation.
		n.lastTrafficAt = time.Now()
	}
	n.buffer[m.Seq] = m
	if m.Seq > n.highest {
		n.highest = m.Seq
	}
	// Evidence of ring progress cancels a pending token resend.
	if n.lastSentToken != nil && m.Seq > n.lastSentToken.Seq {
		n.clearTokenResend()
	}
	n.tryDeliver()
	if n.fpActive && n.leaderID != n.cfg.ID {
		// A sequencer retransmission landed (kindRegular serves naks for
		// ring-era sequence numbers): report the advanced watermark.
		n.scheduleAck()
	}
}

func (n *Node) handleToken(t token) {
	if t.RingID != n.ringID {
		if t.RingID > n.ringID && !n.gathering {
			n.startGather()
		} else if t.RingID < n.ringID && !n.inRing(t.Succ) && !n.gathering {
			// A concurrent foreign ring (partition healing): merge.
			n.startGather()
		}
		return
	}
	if !n.inRing(t.Succ) {
		// Foreign ring sharing our ring id: merge.
		if !n.gathering {
			n.startGather()
		}
		return
	}
	if n.fpActive {
		// The promotion retired this ring's token; anything still in
		// flight is a stale pre-promotion resend. It is never held,
		// quartered or forwarded (token pacing is a no-op in leader
		// mode), and it is not liveness — the sequencer's batches and
		// heartbeats are.
		return
	}
	if t.TokenID <= n.lastTokenID {
		// Stale duplicate from a retransmission. Deliberately not
		// liveness: a ring wedged on a dead member sees only resends of
		// the same token, and must still reconfigure.
		return
	}
	n.lastTokenID = t.TokenID
	n.touchLiveness()
	// Progress evidence: a token newer than the one we forwarded means
	// the successor processed ours, so stop retransmitting it. Our own
	// broadcast echo carries exactly the TokenID we sent and must not
	// count as evidence.
	if n.lastSentToken != nil && t.TokenID > n.lastSentToken.TokenID {
		n.clearTokenResend()
	}
	if n.gathering {
		return
	}
	if t.Succ != n.cfg.ID {
		// Token observed in passing (tokens are broadcast so every node
		// can use them for liveness and merge detection).
		return
	}
	n.clearTokenResend()
	n.processToken(t)
}

// processToken performs one token visit: apply skips, serve and update
// retransmission requests, broadcast pending messages, maintain the aru
// watermark, age requests (leader only), then forward.
func (n *Node) processToken(t token) {
	work := false

	// Apply the skip list: declared-unrecoverable sequence numbers count
	// as received-but-empty so delivery can proceed past them.
	for _, s := range t.Skip {
		if s > n.deliveredSeq {
			if _, have := n.buffer[s]; !have && !n.skipped[s] {
				n.skipped[s] = true
			}
		}
	}
	n.tryDeliver()

	// Serve retransmission requests we can satisfy. A request is dropped
	// only once served, skipped, or below the confirmed stability
	// watermark (which proves the requester received it); a node must
	// not drop requests merely because it has delivered past them
	// itself.
	kept := t.Rtr[:0]
	for _, e := range t.Rtr {
		if m, ok := n.buffer[e.Seq]; ok {
			m.RingID = n.ringID // restamp for the current configuration
			n.broadcastRaw(encodeRegular(m))
			n.retransmittedN.Add(1)
			work = true
			continue
		}
		if n.skipped[e.Seq] || e.Seq <= t.Stable {
			continue // resolved
		}
		kept = append(kept, e)
	}
	t.Rtr = kept

	// Request what we are missing.
	for s := n.deliveredSeq + 1; s <= t.Seq; s++ {
		if _, ok := n.buffer[s]; ok || n.skipped[s] {
			continue
		}
		if !t.hasRtr(s) {
			t.Rtr = append(t.Rtr, rtrEntry{Seq: s})
		}
	}

	// Broadcast pending messages, consuming new sequence numbers. Flow
	// control caps the visit twice: by the member's fair share of the
	// rotation window (so an eager early member cannot starve the rest)
	// and by what is left of the window itself.
	n.drainSendq()
	burst := n.cfg.MaxBurst
	if n.cfg.WindowSize > 0 && len(n.ring) > 0 {
		quota := n.cfg.WindowSize / len(n.ring)
		if quota < 1 {
			quota = 1
		}
		if quota < burst {
			burst = quota
		}
		if remaining := n.cfg.WindowSize - int(t.Spent); remaining < burst {
			burst = remaining
		}
	}
	drained := 0
	for drained < len(n.pending) && burst > 0 {
		burst--
		t.Seq++
		var m regularMsg
		if n.cfg.DisablePacking {
			m = regularMsg{RingID: n.ringID, Seq: t.Seq, Sender: n.cfg.ID, Payload: n.pending[drained]}
			drained++
		} else {
			// Pack as many queued payloads as fit into one message (one
			// sequence number, one datagram, one window slot), as the
			// original Totem fills each packet from the send queue. The
			// first payload is always accepted so oversized payloads still
			// travel (alone); later ones must keep the pack within the
			// count and byte bounds.
			first := drained
			bytes := len(n.pending[drained])
			drained++
			for drained < len(n.pending) &&
				drained-first < n.cfg.MaxPackCount &&
				bytes+len(n.pending[drained]) <= n.cfg.MaxPackBytes {
				bytes += len(n.pending[drained])
				drained++
			}
			if drained-first == 1 {
				// A single payload degrades to the plain form: identical
				// wire bytes to the pre-packing protocol.
				m = regularMsg{RingID: n.ringID, Seq: t.Seq, Sender: n.cfg.ID, Payload: n.pending[first]}
			} else {
				parts := make([][]byte, drained-first)
				copy(parts, n.pending[first:drained])
				m = regularMsg{RingID: n.ringID, Seq: t.Seq, Sender: n.cfg.ID, Parts: parts}
				n.packedMsgN.Add(1)
				n.packedPartN.Add(uint64(len(parts)))
			}
		}
		n.buffer[t.Seq] = m
		if t.Seq > n.highest {
			n.highest = t.Seq
		}
		n.broadcastRaw(encodeRegular(m))
		n.broadcastN.Add(1)
		t.Spent++
		work = true
	}
	if drained > 0 {
		// Compact without retaining delivered heads in the backing array.
		rest := len(n.pending) - drained
		copy(n.pending, n.pending[drained:])
		for i := rest; i < len(n.pending); i++ {
			n.pending[i] = nil
		}
		n.pending = n.pending[:rest]
		n.pendingN.Store(int64(rest))
	}
	n.tryDeliver()

	// Stability accounting. Every node folds its own all-received-up-to
	// watermark into the rotation minimum. When the token reaches the
	// leader, the accumulated minimum covers every member's report since
	// the leader's previous visit — one full rotation — so the leader
	// promotes it to the confirmed Stable watermark and starts a fresh
	// rotation minimum. Garbage collection uses only Stable, which
	// guarantees no node discards a message some member still lacks.
	myAru := n.deliveredSeq
	if myAru < t.Aru {
		t.Aru = myAru
	}
	isLeader := len(n.ring) > 0 && n.ring[0] == n.cfg.ID
	if isLeader {
		if t.Aru > t.Stable {
			t.Stable = t.Aru
			work = true
		}
		t.Aru = myAru
		// A new rotation begins: reset the flow-control window.
		t.Spent = 0
	}

	// Garbage-collect messages everyone is confirmed to have received.
	n.gc(t.Stable)
	kept2 := t.Skip[:0]
	for _, s := range t.Skip {
		if s > t.Stable {
			kept2 = append(kept2, s)
		}
	}
	t.Skip = kept2

	// The leader ages unsatisfied requests once per rotation; requests
	// that survive SkipAge rotations are declared unrecoverable: no
	// surviving member holds the message (and therefore none delivered
	// it), so agreement is preserved by skipping it everywhere.
	if isLeader {
		kept3 := t.Rtr[:0]
		for _, e := range t.Rtr {
			e.Age++
			if int(e.Age) > n.cfg.SkipAge {
				t.Skip = append(t.Skip, e.Seq)
				if e.Seq > n.deliveredSeq && !n.skipped[e.Seq] {
					n.skipped[e.Seq] = true
				}
				n.skippedN.Add(1)
				work = true
				continue
			}
			kept3 = append(kept3, e)
		}
		t.Rtr = kept3
		n.tryDeliver()
	}

	// Leader-ordered fast path: once the ring is mature and fully
	// quiescent — every assigned sequence number delivered everywhere,
	// nothing outstanding — the current holder promotes to sequencer and
	// retires the token instead of forwarding it. The quiescence
	// condition makes the switch sequence exact: every node has delivered
	// precisely through t.Seq in ring order, so t.Seq is the agreed
	// boundary between token-ordered and leader-ordered traffic.
	if n.cfg.Ordering == OrderingLeader &&
		t.TokenID > uint64(2*len(n.ring)) &&
		t.Stable == t.Seq && n.deliveredSeq == t.Seq &&
		len(t.Rtr) == 0 && len(t.Skip) == 0 {
		n.promote(t)
		return
	}

	// Forward immediately if this visit did work or left work pending;
	// otherwise hold before forwarding so an idle ring does not spin.
	// Within ActiveWindow of the last traffic the hold is cut to a
	// quarter: a request submitted at any member mid-conversation meets
	// the token after short holds instead of full idle holds, while the
	// shortened hold still paces rotation enough that token processing
	// does not crowd out payload delivery (a zero hold here floods every
	// member's event loop with token broadcasts and makes latency worse).
	n.heldToken = &t
	n.workInHold = work || len(t.Rtr) > 0 || t.Aru < t.Seq
	if n.workInHold {
		n.finishHold()
		return
	}
	hold := n.cfg.IdleHold
	if time.Since(n.lastTrafficAt) < n.cfg.ActiveWindow {
		hold /= 4
	}
	n.holdUntil = time.Now().Add(hold)
}

// finishHold forwards the held token to the ring successor.
func (n *Node) finishHold() {
	t := n.heldToken
	n.heldToken = nil
	n.holdUntil = time.Time{}
	if t == nil {
		return
	}
	t.TokenID++
	t.Succ = n.successor()
	sent := *t
	n.lastSentToken = &sent
	n.tokenResendAt = time.Now().Add(n.cfg.TokenRetransmit)
	n.broadcastRaw(encodeToken(*t))
	n.tokenPassN.Add(1)
}

// successor returns the next member after this node on the ring.
func (n *Node) successor() memnet.NodeID {
	for i, m := range n.ring {
		if m == n.cfg.ID {
			return n.ring[(i+1)%len(n.ring)]
		}
	}
	// Not on the ring (should not happen operationally); loop to self so
	// the token is not lost.
	return n.cfg.ID
}

func (n *Node) clearTokenResend() {
	n.lastSentToken = nil
	n.tokenResendAt = time.Time{}
}

// tryDeliver delivers buffered messages in contiguous sequence order.
func (n *Node) tryDeliver() {
	for {
		next := n.deliveredSeq + 1
		if n.skipped[next] {
			n.deliveredSeq = next
			continue
		}
		m, ok := n.buffer[next]
		if !ok {
			return
		}
		n.deliveredSeq = next
		if len(m.Parts) > 0 {
			// Unpack: each payload becomes its own delivery, ordered within
			// the message by its sub-index.
			for i, p := range m.Parts {
				n.deliveredN.Add(1)
				n.emit(Event{Type: EventDeliver, Delivery: Delivery{
					Seq:     m.Seq,
					Sub:     uint32(i),
					RingID:  m.RingID,
					Sender:  m.Sender,
					Payload: p,
				}})
			}
			continue
		}
		n.deliveredN.Add(1)
		n.emit(Event{Type: EventDeliver, Delivery: Delivery{
			Seq:     m.Seq,
			RingID:  m.RingID,
			Sender:  m.Sender,
			Payload: m.Payload,
		}})
	}
}

// gc discards buffered and skipped entries at or below the stability
// watermark: every ring member has received them.
func (n *Node) gc(aru uint64) {
	for s := range n.buffer {
		if s <= aru {
			delete(n.buffer, s)
		}
	}
	for s := range n.skipped {
		if s <= aru {
			delete(n.skipped, s)
		}
	}
}

func (n *Node) emit(ev Event) {
	//lint:allow looplock delivery backpressure is intentional and the stop channel bounds the wait
	select {
	// This send is where the arena borrow begins, not where it leaks:
	// the events channel is the protocol's delivery handoff, and the
	// consumer contract (Config.Events doc) is to finish or copy each
	// event before taking the next.
	//lint:allow arenaalias the delivery channel is the borrow's sanctioned handoff point
	case n.events <- ev:
	case <-n.stop:
	}
}

func (n *Node) touchLiveness() {
	if !n.gathering {
		n.failDeadline = time.Now().Add(n.cfg.FailTimeout)
	}
}

func (n *Node) inRing(id memnet.NodeID) bool {
	for _, m := range n.ring {
		if m == id {
			return true
		}
	}
	return false
}

func (n *Node) broadcastRaw(b []byte) {
	// A crashed node's sends fail; the loop keeps running so the node
	// can rejoin after a simulated restart.
	_ = n.ep.Broadcast(b)
}

// startGather begins membership recovery.
func (n *Node) startGather() {
	if n.fpActive {
		// Any fall into membership recovery from leader mode is a
		// demotion: the ring rotates again until a fresh promotion.
		n.demotionN.Add(1)
		n.leaveLeaderMode()
	}
	n.gathering = true
	n.heldToken = nil
	n.holdUntil = time.Time{}
	n.clearTokenResend()
	n.failDeadline = time.Time{}
	n.alive = map[memnet.NodeID]bool{n.cfg.ID: true}
	n.joinHighest = map[memnet.NodeID]uint64{n.cfg.ID: n.highest}
	n.joinAru = map[memnet.NodeID]uint64{n.cfg.ID: n.deliveredSeq}
	if n.ringID+1 > n.proposedRingID {
		n.proposedRingID = n.ringID + 1
	}
	n.gatherDeadline = time.Now().Add(n.cfg.GatherTimeout)
	n.sendJoin()
}

func (n *Node) sendJoin() {
	alive := make([]memnet.NodeID, 0, len(n.alive))
	for id := range n.alive {
		alive = append(alive, id)
	}
	sort.Slice(alive, func(i, j int) bool { return alive[i] < alive[j] })
	n.broadcastRaw(encodeJoin(joinMsg{
		Sender:  n.cfg.ID,
		Alive:   alive,
		RingID:  n.proposedRingID,
		Highest: n.highest,
		Aru:     n.deliveredSeq,
	}))
}

func (n *Node) handleJoin(j joinMsg) {
	if !n.gathering {
		// Stale echo from a completed gather we already installed.
		if j.RingID <= n.ringID && n.inRing(j.Sender) {
			return
		}
		n.startGather()
	}
	changed := false
	if !n.alive[j.Sender] {
		n.alive[j.Sender] = true
		changed = true
	}
	for _, id := range j.Alive {
		if !n.alive[id] {
			n.alive[id] = true
			changed = true
		}
	}
	n.joinHighest[j.Sender] = j.Highest
	n.joinAru[j.Sender] = j.Aru
	if j.RingID > n.proposedRingID {
		n.proposedRingID = j.RingID
		changed = true
	}
	if changed {
		n.gatherDeadline = time.Now().Add(n.cfg.GatherTimeout)
		n.sendJoin()
	}
}

// installRing ends the gather phase: the stable alive set becomes the new
// ring, and the lowest-id member generates the new token.
func (n *Node) installRing() {
	members := make([]memnet.NodeID, 0, len(n.alive))
	for id := range n.alive {
		members = append(members, id)
	}
	sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })

	n.ring = members
	n.ringID = n.proposedRingID
	n.gathering = false
	n.lastTokenID = 0
	n.gatherDeadline = time.Time{}
	n.failDeadline = time.Now().Add(n.cfg.FailTimeout)
	n.reconfigN.Add(1)
	// Start the new ring's pacing clock now: after a promotion/demotion
	// cycle the previous epoch's traffic timestamps must not add idle
	// holds to (or remove them from) the first post-switch rotations.
	n.lastTrafficAt = time.Now()

	n.mu.Lock()
	n.curMembers = members
	n.curRingID = n.ringID
	n.mu.Unlock()

	n.emit(Event{Type: EventConfig, Config: ConfigChange{
		RingID:  n.ringID,
		Members: members,
	}})

	if members[0] != n.cfg.ID {
		return
	}
	// Leader: create the first token of the new ring. Seq resumes from
	// the highest sequence number any survivor reported, and the
	// stability watermark starts at the minimum so no survivor
	// garbage-collects messages another still needs.
	var maxHighest, minAru uint64
	first := true
	for id := range n.alive {
		h, ok := n.joinHighest[id]
		if !ok {
			continue
		}
		if h > maxHighest {
			maxHighest = h
		}
		a := n.joinAru[id]
		if first || a < minAru {
			minAru = a
			first = false
		}
	}
	if n.highest > maxHighest {
		maxHighest = n.highest
	}
	t := token{
		RingID:  n.ringID,
		TokenID: 1,
		Seq:     maxHighest,
		Aru:     minAru,
		Stable:  minAru,
	}
	// Process the fresh token as if it had just arrived addressed to us.
	n.lastTokenID = t.TokenID
	n.processToken(t)
}

// hasRtr reports whether seq already has a retransmission request.
func (t token) hasRtr(seq uint64) bool {
	for _, e := range t.Rtr {
		if e.Seq == seq {
			return true
		}
	}
	return false
}
