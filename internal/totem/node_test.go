package totem

import (
	"fmt"
	"testing"
	"time"

	"eternalgw/internal/memnet"
)

// cluster is a test harness: a memnet network plus one totem node per id.
type cluster struct {
	t     *testing.T
	net   *memnet.Network
	nodes map[memnet.NodeID]*Node
	ids   []memnet.NodeID
}

// fastConfig returns timeouts tuned for tests.
func fastConfig() Config {
	return Config{
		IdleHold:        100 * time.Microsecond,
		TokenRetransmit: 10 * time.Millisecond,
		FailTimeout:     80 * time.Millisecond,
		GatherTimeout:   20 * time.Millisecond,
	}
}

func newCluster(t *testing.T, n int, opts ...memnet.Option) *cluster {
	t.Helper()
	return newClusterCfg(t, n, nil, opts...)
}

// newClusterCfg is newCluster with a config hook applied to every
// member, for tests that need non-default protocol knobs (ordering
// mode, lag limits).
func newClusterCfg(t *testing.T, n int, mut func(*Config), opts ...memnet.Option) *cluster {
	t.Helper()
	c := &cluster{
		t:     t,
		net:   memnet.New(opts...),
		nodes: make(map[memnet.NodeID]*Node, n),
	}
	for i := 0; i < n; i++ {
		c.ids = append(c.ids, memnet.NodeID(fmt.Sprintf("n%02d", i)))
	}
	for _, id := range c.ids {
		ep, err := c.net.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		cfg := fastConfig()
		cfg.ID = id
		cfg.Endpoint = ep
		cfg.Members = c.ids
		if mut != nil {
			mut(&cfg)
		}
		node, err := Start(cfg)
		if err != nil {
			t.Fatal(err)
		}
		c.nodes[id] = node
	}
	t.Cleanup(func() {
		for _, n := range c.nodes {
			n.Stop()
		}
	})
	return c
}

// waitConfig consumes events from node id until a config with want
// members is seen, returning any deliveries observed on the way.
func (c *cluster) waitConfig(id memnet.NodeID, want int) []Delivery {
	c.t.Helper()
	var seen []Delivery
	deadline := time.After(5 * time.Second)
	for {
		select {
		case ev := <-c.nodes[id].Events():
			switch ev.Type {
			case EventConfig:
				if len(ev.Config.Members) == want {
					return seen
				}
			case EventDeliver:
				seen = append(seen, ev.Delivery)
			}
		case <-deadline:
			c.t.Fatalf("%s: timed out waiting for %d-member config", id, want)
		}
	}
}

// collect consumes events from node id until n deliveries have been
// observed, ignoring config changes.
func (c *cluster) collect(id memnet.NodeID, n int) []Delivery {
	c.t.Helper()
	out := make([]Delivery, 0, n)
	deadline := time.After(10 * time.Second)
	for len(out) < n {
		select {
		case ev := <-c.nodes[id].Events():
			if ev.Type == EventDeliver {
				out = append(out, ev.Delivery)
			}
		case <-deadline:
			c.t.Fatalf("%s: timed out after %d/%d deliveries", id, len(out), n)
		}
	}
	return out
}

func TestSingleNodeRingDelivers(t *testing.T) {
	c := newCluster(t, 1)
	c.waitConfig("n00", 1)
	for i := 0; i < 10; i++ {
		if err := c.nodes["n00"].Multicast([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	ds := c.collect("n00", 10)
	for i, d := range ds {
		if d.Payload[0] != byte(i) {
			t.Fatalf("delivery %d = %v", i, d.Payload)
		}
		// With packing several payloads may share one sequence number;
		// (Seq, Sub) — folded into Timestamp — must strictly increase.
		if i > 0 && ds[i].Timestamp() <= ds[i-1].Timestamp() {
			t.Fatalf("non-increasing timestamps %d -> %d", ds[i-1].Timestamp(), ds[i].Timestamp())
		}
	}
}

func TestThreeNodeTotalOrder(t *testing.T) {
	c := newCluster(t, 3)
	for _, id := range c.ids {
		c.waitConfig(id, 3)
	}
	// Every node multicasts concurrently.
	const per = 50
	for _, id := range c.ids {
		go func(n *Node, tag byte) {
			for i := 0; i < per; i++ {
				_ = n.Multicast([]byte{tag, byte(i)})
			}
		}(c.nodes[id], id[1])
	}
	total := per * len(c.ids)
	seqs := make(map[memnet.NodeID][]Delivery)
	for _, id := range c.ids {
		seqs[id] = c.collect(id, total)
	}
	// All nodes must deliver the identical sequence.
	ref := seqs[c.ids[0]]
	for _, id := range c.ids[1:] {
		got := seqs[id]
		for i := range ref {
			if got[i].Seq != ref[i].Seq || got[i].Sub != ref[i].Sub || got[i].Sender != ref[i].Sender ||
				string(got[i].Payload) != string(ref[i].Payload) {
				t.Fatalf("%s delivery %d = %+v, n00 has %+v", id, i, got[i], ref[i])
			}
		}
	}
	// (Seq, Sub) strictly increases and the sequence numbers stay
	// contiguous: a delivery either shares its predecessor's packed
	// message or starts the next one.
	for i := 1; i < len(ref); i++ {
		if ref[i].Timestamp() <= ref[i-1].Timestamp() {
			t.Fatalf("non-increasing timestamps %d -> %d", ref[i-1].Timestamp(), ref[i].Timestamp())
		}
		if ref[i].Seq != ref[i-1].Seq && ref[i].Seq != ref[i-1].Seq+1 {
			t.Fatalf("gap in seqs: %d -> %d", ref[i-1].Seq, ref[i].Seq)
		}
	}
}

func TestSenderFIFOPreserved(t *testing.T) {
	c := newCluster(t, 2)
	for _, id := range c.ids {
		c.waitConfig(id, 2)
	}
	const per = 100
	for i := 0; i < per; i++ {
		if err := c.nodes["n00"].Multicast([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	ds := c.collect("n01", per)
	for i, d := range ds {
		if d.Sender != "n00" || d.Payload[0] != byte(i) {
			t.Fatalf("delivery %d = %+v", i, d)
		}
	}
}

func TestLossRecoveryViaRetransmission(t *testing.T) {
	c := newCluster(t, 3, memnet.WithSeed(42), memnet.WithLoss(0.10))
	for _, id := range c.ids {
		c.waitConfig(id, 3)
	}
	const total = 200
	go func() {
		for i := 0; i < total; i++ {
			_ = c.nodes["n00"].Multicast([]byte{byte(i), byte(i >> 8)})
		}
	}()
	for _, id := range c.ids {
		ds := c.collect(id, total)
		for i, d := range ds {
			if d.Payload[0] != byte(i) || d.Payload[1] != byte(i>>8) {
				t.Fatalf("%s: delivery %d out of order: %v", id, i, d.Payload)
			}
		}
	}
}

func TestCrashTriggersReconfiguration(t *testing.T) {
	c := newCluster(t, 3)
	for _, id := range c.ids {
		c.waitConfig(id, 3)
	}
	c.net.Crash("n02")
	// Survivors must install a 2-member ring and keep delivering.
	c.waitConfig("n00", 2)
	c.waitConfig("n01", 2)
	if err := c.nodes["n00"].Multicast([]byte("after")); err != nil {
		t.Fatal(err)
	}
	d := c.collect("n01", 1)
	if string(d[0].Payload) != "after" {
		t.Fatalf("payload = %q", d[0].Payload)
	}
}

func TestCrashedNodeRejoins(t *testing.T) {
	c := newCluster(t, 3)
	for _, id := range c.ids {
		c.waitConfig(id, 3)
	}
	c.net.Crash("n02")
	c.waitConfig("n00", 2)
	c.net.Restart("n02")
	// The restarted node's fail timer fires, it gathers, and the ring
	// re-merges to 3 members everywhere.
	c.waitConfig("n00", 3)
	c.waitConfig("n02", 3)
	if err := c.nodes["n01"].Multicast([]byte("rejoined")); err != nil {
		t.Fatal(err)
	}
	for _, id := range c.ids {
		d := c.collect(id, 1)
		if string(d[0].Payload) != "rejoined" {
			t.Fatalf("%s payload = %q", id, d[0].Payload)
		}
	}
}

func TestDeliveryAfterCrashKeepsAgreement(t *testing.T) {
	// Messages in flight when a member crashes must still be delivered
	// in the same order by all survivors.
	c := newCluster(t, 4)
	for _, id := range c.ids {
		c.waitConfig(id, 4)
	}
	const total = 100
	go func() {
		for i := 0; i < total; i++ {
			_ = c.nodes["n00"].Multicast([]byte{byte(i)})
			if i == 40 {
				c.net.Crash("n03")
			}
		}
	}()
	a := c.collect("n00", total)
	b := c.collect("n01", total)
	for i := range a {
		if a[i].Seq != b[i].Seq || string(a[i].Payload) != string(b[i].Payload) {
			t.Fatalf("divergence at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestPartitionThenHealMerges(t *testing.T) {
	c := newCluster(t, 4)
	for _, id := range c.ids {
		c.waitConfig(id, 4)
	}
	c.net.Partition([]memnet.NodeID{"n00", "n01"}, []memnet.NodeID{"n02", "n03"})
	c.waitConfig("n00", 2)
	c.waitConfig("n02", 2)
	c.net.Heal()
	// After healing, traffic from the foreign ring triggers a merge.
	if err := c.nodes["n00"].Multicast([]byte("probe")); err != nil {
		t.Fatal(err)
	}
	c.waitConfig("n00", 4)
	c.waitConfig("n03", 4)
}

func TestStatsCount(t *testing.T) {
	c := newCluster(t, 2)
	for _, id := range c.ids {
		c.waitConfig(id, 2)
	}
	if err := c.nodes["n00"].Multicast([]byte("x")); err != nil {
		t.Fatal(err)
	}
	c.collect("n00", 1)
	c.collect("n01", 1)
	st := c.nodes["n00"].Stats()
	if st.Broadcast != 1 || st.Delivered != 1 || st.Reconfigs == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestMulticastAfterStop(t *testing.T) {
	c := newCluster(t, 1)
	c.waitConfig("n00", 1)
	c.nodes["n00"].Stop()
	if err := c.nodes["n00"].Multicast([]byte("x")); err != ErrStopped {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
}

func TestMembersSnapshot(t *testing.T) {
	c := newCluster(t, 3)
	c.waitConfig("n00", 3)
	m := c.nodes["n00"].Members()
	if len(m) != 3 || m[0] != "n00" || m[1] != "n01" || m[2] != "n02" {
		t.Fatalf("members = %v", m)
	}
	if c.nodes["n00"].RingID() == 0 {
		t.Fatal("ring id not set")
	}
}
