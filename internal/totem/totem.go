// Package totem implements a single-ring totally-ordered reliable
// multicast protocol in the style of Totem (Moser et al., CACM 39(4),
// 1996), which the Eternal system uses as the communication substrate
// inside a fault tolerance domain.
//
// A logical token circulates around a ring of nodes. Only the token
// holder may broadcast regular messages, stamping each with the next
// global sequence number taken from the token; every node delivers
// regular messages in sequence-number order, which yields a single
// system-wide total order. The token also carries a retransmission-
// request list (recovering lost messages), an all-received-up-to
// watermark (garbage-collecting stable messages), and a skip list
// (declaring messages that no surviving member holds after a failure).
//
// Membership: when a node's token-loss timer fires, it enters a gather
// phase, exchanging Join messages until the set of responsive nodes is
// stable; the lowest-id survivor then installs a new ring and generates a
// fresh token. Configuration changes are delivered to the application in
// order with respect to regular messages, as virtual synchrony requires.
//
// The sequence numbers exposed in Delivery.Seq are exactly the
// "timestamps derived from the totally-ordered message sequence numbers"
// that the paper's operation identifiers are built from (paper section
// 3.3): they are filled in at the receiving end, because a sender cannot
// know its message's position in the total order in advance.
package totem

import (
	"time"

	"eternalgw/internal/memnet"
	"eternalgw/internal/obs"
)

// Delivery is one totally-ordered message handed to the application.
type Delivery struct {
	// Seq is the enclosing wire message's global sequence number:
	// identical at every node and non-decreasing across deliveries. With
	// packing enabled several payloads travel in one packed message and
	// share its Seq; Sub orders them within it.
	Seq uint64
	// Sub is the payload's index within its packed wire message (0 for
	// unpacked messages). (Seq, Sub) is unique and strictly increasing
	// in lexicographic order, identically at every node.
	Sub uint32
	// RingID identifies the ring configuration the message was ordered
	// in.
	RingID uint64
	// Sender is the node that originated the message.
	Sender memnet.NodeID
	// Payload is the application payload.
	Payload []byte
}

// subTimestampBits is how far Seq is shifted when folding Sub into a
// single ordered timestamp; MaxPackCount is capped below 1<<subTimestampBits.
const subTimestampBits = 16

// Timestamp folds (Seq, Sub) into one uint64 that is unique, strictly
// increasing in delivery order, and identical at every node: the
// "timestamp derived from the totally-ordered message sequence numbers"
// that the paper's operation identifiers are built from (section 3.3).
func (d Delivery) Timestamp() uint64 {
	return d.Seq<<subTimestampBits | uint64(d.Sub)
}

// ConfigChange reports a membership change: a new ring was installed.
type ConfigChange struct {
	RingID  uint64
	Members []memnet.NodeID
}

// Transport carries the ring's datagrams: unordered, unreliable,
// broadcast-capable (with self-delivery), exactly the service a LAN
// offers the original Totem. memnet.Endpoint implements it for the
// simulated network; udpnet.Endpoint implements it over real UDP.
type Transport interface {
	// ID is the local node's identity on the network.
	ID() memnet.NodeID
	// Recv returns the incoming datagram stream.
	Recv() <-chan memnet.Packet
	// Broadcast sends a datagram to every node, including the sender.
	Broadcast(payload []byte) error
}

// OrderingMode selects how a ring totally orders messages.
type OrderingMode int

const (
	// OrderingRing is the classic Totem rotation: only the circulating
	// token's holder broadcasts, so a submission waits for the token to
	// come around. Latency is bounded below by the rotation time, but no
	// single node is on the datapath of every message.
	OrderingRing OrderingMode = iota
	// OrderingLeader enables the leader-ordered fast path (in the style
	// of LLFT's leader-follower ordering): once a ring is installed and
	// quiescent, the current token holder promotes itself to sequencer
	// and retires the token. Nodes forward pending payloads to the
	// sequencer immediately; it assigns sequence numbers and multicasts
	// ordered batches, while followers ack so the sequencer advances a
	// stability horizon replacing the token-carried aru. Leader failure
	// or an unbounded stability lag demotes the ring cleanly back to
	// token rotation (the membership-recovery protocol), from which a
	// fresh promotion can follow. The total-order, gap-recovery and
	// virtual-synchrony guarantees are identical in both modes.
	OrderingLeader
)

// Config parameterizes a Node.
type Config struct {
	// ID is this node's identity; it must match the endpoint's.
	ID memnet.NodeID
	// Endpoint is the node's attachment to the network.
	Endpoint Transport
	// Members is the initial ring membership, including this node.
	// All founding members must be configured with the same list.
	Members []memnet.NodeID

	// MaxBurst bounds how many queued messages one token visit may
	// broadcast. Zero means the default of 64.
	MaxBurst int
	// WindowSize bounds how many regular messages the whole ring may
	// broadcast per token rotation (Totem's flow control). Zero disables
	// the global bound, leaving only the per-visit MaxBurst. All members
	// must configure the same value.
	WindowSize int
	// IdleHold is how long an idle token holder waits before forwarding
	// the token, throttling rotation when there is no traffic. Zero
	// means the default of 200 microseconds.
	IdleHold time.Duration
	// ActiveWindow is how long after the last observed application
	// traffic the ring keeps rotating at full speed before idle holds
	// resume. While traffic is flowing a request submitted anywhere on
	// the ring meets the token after plain rotation hops instead of up
	// to one IdleHold per quiet member, which is what bounds datapath
	// latency under load; once the ring has been quiet for the window,
	// holds resume and an idle ring stops spinning. Zero means eight
	// times IdleHold.
	ActiveWindow time.Duration
	// TokenRetransmit is how long the previous holder waits for evidence
	// of progress before resending the token. Zero means 25ms.
	TokenRetransmit time.Duration
	// FailTimeout is how long a node tolerates not seeing the token (or
	// any ring traffic) before starting membership recovery. Zero means
	// 250ms.
	FailTimeout time.Duration
	// GatherTimeout is how long the alive-set must be stable during
	// membership recovery before a new ring is installed. Zero means
	// 60ms.
	GatherTimeout time.Duration
	// SkipAge is how many unsatisfied full token rotations a
	// retransmission request survives before the leader declares the
	// message unrecoverable and skips it. Zero means 4.
	SkipAge int

	// DisablePacking turns off message packing: every queued payload is
	// broadcast as its own regular message, as the pre-packing protocol
	// did. Exists for ablation and for transports whose datagrams cannot
	// carry a packed message.
	DisablePacking bool
	// MaxPackCount bounds how many payloads one packed message carries.
	// Zero means 32; values are capped so (Seq, Sub) still folds into a
	// single 64-bit timestamp.
	MaxPackCount int
	// MaxPackBytes bounds the payload bytes of one packed message, so a
	// pack fits one datagram on real transports (udpnet reassembles up
	// to 64 KiB). Zero means 32 KiB. A payload larger than the bound is
	// never packed; it travels alone as a plain regular message.
	MaxPackBytes int

	// Ordering selects the total-order mechanism: the token ring
	// (default) or the leader-ordered fast path. All members must
	// configure the same value; the ring always starts in ring mode and
	// only promotes a sequencer once installed and quiescent, so mixed
	// settings degrade to whichever nodes refuse to adopt (and then to a
	// membership change), not to an ordering violation.
	Ordering OrderingMode
	// FastpathLagLimit bounds, in sequence numbers, how far the
	// sequencer may run ahead of the stability horizon before it demotes
	// the ring back to token rotation (leader mode's backlog-imbalance
	// escape: a follower that cannot keep up would otherwise force
	// unbounded buffering everywhere). Zero means 4096.
	FastpathLagLimit int

	// Metrics, when set, exposes the node's protocol counters on the
	// registry, labelled node=<ID>. The protocol goroutine keeps its
	// bare atomic counters; the registry reads them only at scrape time.
	Metrics *obs.Registry
}

func (c *Config) applyDefaults() {
	if c.MaxBurst == 0 {
		c.MaxBurst = 64
	}
	if c.IdleHold == 0 {
		c.IdleHold = 200 * time.Microsecond
	}
	if c.ActiveWindow == 0 {
		c.ActiveWindow = 8 * c.IdleHold
	}
	if c.TokenRetransmit == 0 {
		c.TokenRetransmit = 25 * time.Millisecond
	}
	if c.FailTimeout == 0 {
		c.FailTimeout = 250 * time.Millisecond
	}
	if c.GatherTimeout == 0 {
		c.GatherTimeout = 60 * time.Millisecond
	}
	if c.SkipAge == 0 {
		c.SkipAge = 4
	}
	if c.MaxPackCount == 0 {
		c.MaxPackCount = 32
	}
	if c.MaxPackCount >= 1<<subTimestampBits {
		c.MaxPackCount = 1<<subTimestampBits - 1
	}
	if c.MaxPackBytes == 0 {
		c.MaxPackBytes = 32 << 10
	}
	if c.FastpathLagLimit == 0 {
		c.FastpathLagLimit = 4096
	}
}

// Stats is a snapshot of a node's protocol counters.
type Stats struct {
	Broadcast     uint64 // regular datagrams this node originated (a pack counts once)
	Delivered     uint64 // application payloads delivered in total order
	Retransmitted uint64 // retransmissions this node served
	Skipped       uint64 // sequence numbers declared unrecoverable
	TokenPasses   uint64 // tokens this node forwarded
	Reconfigs     uint64 // ring installations
	PackedMsgs    uint64 // packed datagrams this node originated
	PackedParts   uint64 // payloads that travelled inside those packs
	Forwarded     uint64 // payloads this node forwarded to a sequencer (leader mode)
	LeaderBatches uint64 // ordered batches this node multicast as sequencer
	Promotions    uint64 // leader epochs this node installed (as sequencer or follower)
	Demotions     uint64 // falls from leader mode back to ring rotation
	StabilityLag  uint64 // sequencer's current seq minus its stability horizon
}
