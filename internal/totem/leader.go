package totem

// Leader-ordered fast path (Config.Ordering == OrderingLeader), in the
// style of LLFT's leader-follower ordering. Once a ring is installed and
// fully quiescent, the current token holder promotes itself to sequencer
// and retires the token. From then on the common path has no token wait:
// a node with pending payloads forwards them to the sequencer
// immediately (kindForward), the sequencer assigns the next sequence
// numbers and multicasts ordered batches (kindBatch, the packed wire
// form plus a leader header), and followers report their contiguous
// received watermark (kindAck) so the sequencer advances a stability
// horizon that replaces the token-carried aru for garbage collection and
// retransmission decisions. Promotion and each heartbeat are kindPromote.
//
// Failure handling is demotion: the sequencer demotes when a member's
// acks go stale past FailTimeout or when the stability lag exceeds
// FastpathLagLimit; a follower demotes when the sequencer's traffic
// stops (the ordinary fail timer) or when its forwards are resent
// maxFwdResends times without being ordered (a wedged-but-heartbeating
// sequencer). Demotion is simply membership recovery — startGather — so
// the token-regeneration path doubles as the fast path's recovery
// protocol, after which a fresh promotion can follow on the new ring.
//
// The mode switch is installed at an agreed sequence: promotion requires
// every assigned sequence number delivered at every member (stable ==
// seq == local aru, no outstanding requests or skips), so promoteSeq is
// exactly the boundary below which everything was token-ordered and
// above which everything is leader-ordered within the ring. All
// functions here run on the protocol goroutine and share its state
// ownership rules.

import (
	"time"

	"eternalgw/internal/memnet"
)

const (
	// maxFwdStash bounds out-of-order forwards stashed per origin; drops
	// beyond it are recovered by the origin's resend timer.
	maxFwdStash = 64
	// maxFwdResends is how many times a follower resends an unordered
	// forward before declaring the sequencer wedged and demoting.
	maxFwdResends = 8
	// maxNaks bounds gap requests per ack datagram.
	maxNaks = 64
)

func (n *Node) heartbeatInterval() time.Duration { return n.cfg.FailTimeout / 4 }
func (n *Node) ackDelay() time.Duration          { return n.cfg.IdleHold / 2 }

// promote installs this node as the ring's sequencer, consuming the
// token for good (only the addressed holder of a live token can get
// here, so at most one promotion happens per ring).
func (n *Node) promote(t token) {
	now := time.Now()
	n.fpActive = true
	n.leaderID = n.cfg.ID
	n.promoteSeq = t.Seq
	n.leaderSeq = t.Seq
	n.leaderStable = t.Stable
	n.fpSeqA.Store(t.Seq)
	n.fpStableA.Store(t.Stable)
	n.memberAru = make(map[memnet.NodeID]uint64, len(n.ring))
	n.memberAckAt = make(map[memnet.NodeID]time.Time, len(n.ring))
	for _, m := range n.ring {
		if m == n.cfg.ID {
			continue
		}
		n.memberAru[m] = t.Stable
		n.memberAckAt[m] = now
	}
	n.fwdSeen = make(map[memnet.NodeID]uint64)
	n.fwdStash = make(map[memnet.NodeID]map[uint64]forwardMsg)
	n.fwdLast = make(map[memnet.NodeID]uint64)
	n.batchOrigin = make(map[uint64]batchRef)
	n.fwdNext = 0
	n.awaiting = nil
	n.awaitingParts = 0
	n.heldToken = nil
	n.holdUntil = time.Time{}
	n.clearTokenResend()
	n.heartbeatAt = now.Add(n.heartbeatInterval())
	n.failDeadline = now.Add(n.cfg.FailTimeout)
	n.promotionN.Add(1)
	n.setFastpathMirror(n.cfg.ID, t.Seq)
	n.broadcastRaw(encodePromote(promoteMsg{
		RingID: n.ringID, Leader: n.cfg.ID, StartSeq: t.Seq, Stable: t.Stable,
	}))
	n.drainSendq()
	n.leaderOrderPending()
}

// adoptLeader installs a remote sequencer on this node. startSeq may be
// zero when adoption was triggered by a batch (the promote datagram was
// lost); the next heartbeat fills in the agreed switch sequence.
func (n *Node) adoptLeader(leader memnet.NodeID, startSeq, stable uint64) {
	n.fpActive = true
	n.leaderID = leader
	n.promoteSeq = startSeq
	n.fwdNext = 0
	n.awaiting = nil
	n.awaitingParts = 0
	n.fwdResendAt = time.Time{}
	n.ackDueAt = time.Time{}
	n.heldToken = nil
	n.holdUntil = time.Time{}
	n.clearTokenResend()
	n.promotionN.Add(1)
	n.setFastpathMirror(leader, startSeq)
	n.touchLiveness()
	n.applyStable(stable)
	n.drainSendq()
	n.forwardPending()
	n.sendAck(time.Now())
}

// leaveLeaderMode tears the fast path down on the way into membership
// recovery (the only exit from leader mode).
func (n *Node) leaveLeaderMode() {
	n.fpActive = false
	n.leaderID = ""
	// Forwards the sequencer never ordered go back to the front of the
	// send queue and rotate out with the new ring. If a batch for one of
	// them did reach some member, ring recovery re-delivers it there and
	// the requeued copy becomes a second delivery under a new sequence
	// number — which the replication layer's operation-id dedup absorbs,
	// the same way it absorbs gateway retries.
	if len(n.awaiting) > 0 {
		requeued := make([][]byte, 0, n.awaitingParts+len(n.pending))
		for _, a := range n.awaiting {
			requeued = append(requeued, a.parts...)
		}
		n.pending = append(requeued, n.pending...)
	}
	n.awaiting = nil
	n.awaitingParts = 0
	n.pendingN.Store(int64(len(n.pending)))
	n.memberAru = nil
	n.memberAckAt = nil
	n.fwdSeen = nil
	n.fwdStash = nil
	n.fwdLast = nil
	n.batchOrigin = nil
	n.fwdNext = 0
	n.heartbeatAt = time.Time{}
	n.fwdResendAt = time.Time{}
	n.ackDueAt = time.Time{}
	n.fpSeqA.Store(0)
	n.fpStableA.Store(0)
	n.setFastpathMirror("", 0)
}

func (n *Node) setFastpathMirror(leader memnet.NodeID, startSeq uint64) {
	n.mu.Lock()
	n.curLeader = leader
	n.curLeaderSeq = startSeq
	n.mu.Unlock()
}

// compactPending drops the first drained entries of the send queue
// without retaining payload slices in the backing array.
func (n *Node) compactPending(drained int) {
	if drained == 0 {
		return
	}
	rest := len(n.pending) - drained
	copy(n.pending, n.pending[drained:])
	for i := rest; i < len(n.pending); i++ {
		n.pending[i] = nil
	}
	n.pending = n.pending[:rest]
	n.pendingN.Store(int64(rest))
}

// forwardPending ships every queued payload to the sequencer instead of
// waiting for a token visit: the fast path's datapath entry on a
// follower. Payloads are chunked by the same packing bounds the ring
// uses, each chunk one forward; the chunk stays in awaiting until its
// ordered batch comes back.
func (n *Node) forwardPending() {
	n.drainSendq()
	drained := 0
	for drained < len(n.pending) {
		first := drained
		bytes := len(n.pending[drained])
		drained++
		if !n.cfg.DisablePacking {
			for drained < len(n.pending) &&
				drained-first < n.cfg.MaxPackCount &&
				bytes+len(n.pending[drained]) <= n.cfg.MaxPackBytes {
				bytes += len(n.pending[drained])
				drained++
			}
		}
		parts := make([][]byte, drained-first)
		copy(parts, n.pending[first:drained])
		if len(parts) > 1 {
			n.packedMsgN.Add(1)
			n.packedPartN.Add(uint64(len(parts)))
		}
		n.fwdNext++
		n.awaiting = append(n.awaiting, awaitingFwd{fwd: n.fwdNext, parts: parts})
		n.awaitingParts += len(parts)
		n.broadcastRaw(encodeForward(forwardMsg{
			RingID: n.ringID, Sender: n.cfg.ID, FwdSeq: n.fwdNext, Parts: parts,
		}))
		n.broadcastN.Add(1)
		n.forwardedN.Add(uint64(len(parts)))
	}
	n.compactPending(drained)
	n.pendingN.Store(int64(len(n.pending) + n.awaitingParts))
	if len(n.awaiting) > 0 && n.fwdResendAt.IsZero() {
		n.fwdResendAt = time.Now().Add(n.cfg.TokenRetransmit)
	}
}

// leaderOrderPending orders the sequencer's own submissions directly.
func (n *Node) leaderOrderPending() {
	n.drainSendq()
	drained := 0
	for drained < len(n.pending) {
		first := drained
		bytes := len(n.pending[drained])
		drained++
		if !n.cfg.DisablePacking {
			for drained < len(n.pending) &&
				drained-first < n.cfg.MaxPackCount &&
				bytes+len(n.pending[drained]) <= n.cfg.MaxPackBytes {
				bytes += len(n.pending[drained])
				drained++
			}
		}
		parts := make([][]byte, drained-first)
		copy(parts, n.pending[first:drained])
		if len(parts) > 1 {
			n.packedMsgN.Add(1)
			n.packedPartN.Add(uint64(len(parts)))
		}
		n.fwdNext++
		n.broadcastN.Add(1)
		if !n.orderParts(n.cfg.ID, n.fwdNext, parts) {
			// Demoted mid-drain (stability lag): what was not ordered
			// stays pending for the ring.
			break
		}
	}
	n.compactPending(drained)
}

// orderParts assigns the next sequence number to one forward's payloads,
// multicasts the ordered batch, and delivers locally. It reports false
// when ordering stopped because the stability-lag limit demoted the ring.
func (n *Node) orderParts(origin memnet.NodeID, fwd uint64, parts [][]byte) bool {
	n.leaderSeq++
	seq := n.leaderSeq
	m := regularMsg{RingID: n.ringID, Seq: seq, Sender: origin}
	if len(parts) == 1 {
		m.Payload = parts[0]
	} else {
		m.Parts = parts
	}
	n.buffer[seq] = m
	if seq > n.highest {
		n.highest = seq
	}
	n.batchOrigin[seq] = batchRef{origin: origin, fwd: fwd}
	n.fwdLast[origin] = seq
	n.fpSeqA.Store(seq)
	n.leaderBatchN.Add(1)
	n.broadcastRaw(encodeBatch(batchMsg{
		RingID: n.ringID, Seq: seq, Leader: n.cfg.ID,
		Origin: origin, OriginFwd: fwd,
		Stable: n.leaderStable, Parts: parts,
	}))
	n.tryDeliver()
	n.updateStability()
	if seq-n.leaderStable > uint64(n.cfg.FastpathLagLimit) {
		// Backlog imbalance: a member is not confirming. Demote to ring
		// rotation rather than buffer without bound.
		n.startGather()
		return false
	}
	return true
}

// handleForward is the sequencer's side of the datapath: order each
// origin's forwards in FwdSeq order, exactly once.
func (n *Node) handleForward(f forwardMsg) {
	if f.RingID != n.ringID {
		if f.RingID > n.ringID && !n.gathering {
			n.startGather()
		}
		return
	}
	if n.gathering || !n.fpActive || n.leaderID != n.cfg.ID {
		return
	}
	if !n.inRing(f.Sender) {
		n.startGather()
		return
	}
	n.touchLiveness()
	n.memberAckAt[f.Sender] = time.Now()
	seen := n.fwdSeen[f.Sender]
	if f.FwdSeq <= seen {
		// A resend of a forward already ordered: the origin has not seen
		// its batch. Repeat the origin's most recent batch so it can
		// clear its awaiting list (earlier ones re-trigger naks if also
		// lost).
		if seq, ok := n.fwdLast[f.Sender]; ok {
			if m, have := n.buffer[seq]; have {
				n.rebroadcastOrdered(seq, m)
			}
		}
		return
	}
	if f.FwdSeq > seen+1 {
		// Out of order: stash until the gap fills; the origin's resend
		// timer recovers drops beyond the bounded stash.
		stash := n.fwdStash[f.Sender]
		if stash == nil {
			stash = make(map[uint64]forwardMsg)
			n.fwdStash[f.Sender] = stash
		}
		if len(stash) < maxFwdStash {
			stash[f.FwdSeq] = f
		}
		return
	}
	if !n.orderParts(f.Sender, f.FwdSeq, f.Parts) {
		return
	}
	n.fwdSeen[f.Sender] = f.FwdSeq
	for {
		next, ok := n.fwdStash[f.Sender][n.fwdSeen[f.Sender]+1]
		if !ok {
			return
		}
		delete(n.fwdStash[f.Sender], next.FwdSeq)
		if !n.orderParts(f.Sender, next.FwdSeq, next.Parts) {
			return
		}
		n.fwdSeen[f.Sender] = next.FwdSeq
	}
}

// rebroadcastOrdered retransmits an ordered sequence number: as a batch
// when it was leader-ordered (so the origin also learns its forward came
// back), in the plain regular form for ring-era sequence numbers.
func (n *Node) rebroadcastOrdered(seq uint64, m regularMsg) {
	if ref, ok := n.batchOrigin[seq]; ok {
		parts := m.Parts
		if parts == nil {
			parts = [][]byte{m.Payload}
		}
		n.broadcastRaw(encodeBatch(batchMsg{
			RingID: n.ringID, Seq: seq, Leader: n.cfg.ID,
			Origin: ref.origin, OriginFwd: ref.fwd,
			Stable: n.leaderStable, Parts: parts,
		}))
	} else {
		m.RingID = n.ringID
		n.broadcastRaw(encodeRegular(m))
	}
	n.retransmittedN.Add(1)
}

// handleBatch accepts an ordered batch from the sequencer. The payload
// path is handleRegular — a batch is a packed regular message ordered by
// the leader instead of a token visit — so buffering, gap detection,
// contiguous delivery and recovery-time retransmission all behave
// identically in both modes.
func (n *Node) handleBatch(b batchMsg) {
	if b.RingID == n.ringID && !n.gathering {
		if !n.inRing(b.Leader) {
			n.startGather()
			return
		}
		if !n.fpActive {
			if n.cfg.Ordering != OrderingLeader {
				return // misconfigured peer promoted; refuse the mode
			}
			// First evidence of a promotion whose datagram we lost:
			// adopt now; the heartbeat fills in the switch sequence.
			n.adoptLeader(b.Leader, 0, b.Stable)
		} else if n.leaderID != b.Leader {
			// Two sequencers inside one ring is impossible by
			// construction (one live token, one promotion per ring);
			// treat it as corruption and resolve through recovery.
			n.startGather()
			return
		}
	}
	m := regularMsg{RingID: b.RingID, Seq: b.Seq, Sender: b.Origin}
	if len(b.Parts) == 1 {
		m.Payload = b.Parts[0]
	} else {
		m.Parts = b.Parts
	}
	n.handleRegular(m)
	if b.RingID != n.ringID || n.gathering || !n.fpActive || n.leaderID != b.Leader {
		return
	}
	n.applyStable(b.Stable)
	if b.Origin == n.cfg.ID && n.leaderID != n.cfg.ID {
		n.clearOrdered(b.OriginFwd)
	}
}

// clearOrdered drops awaiting forwards up to fwd: the sequencer orders
// one origin's forwards in FwdSeq order, so seeing fwd ordered implies
// everything before it was too.
func (n *Node) clearOrdered(fwd uint64) {
	kept := n.awaiting[:0]
	parts := 0
	for _, a := range n.awaiting {
		if a.fwd <= fwd {
			continue
		}
		parts += len(a.parts)
		kept = append(kept, a)
	}
	for i := len(kept); i < len(n.awaiting); i++ {
		n.awaiting[i] = awaitingFwd{} // release payload slices
	}
	n.awaiting = kept
	n.awaitingParts = parts
	n.pendingN.Store(int64(len(n.pending) + parts))
	if len(n.awaiting) == 0 {
		n.fwdResendAt = time.Time{}
	}
}

// handleAck folds a follower's watermark into the stability horizon and
// serves its gap requests. Only the sequencer consumes acks.
func (n *Node) handleAck(a ackMsg) {
	if a.RingID != n.ringID {
		if a.RingID > n.ringID && !n.gathering {
			n.startGather()
		}
		return
	}
	if n.gathering || !n.fpActive || n.leaderID != n.cfg.ID || a.Sender == n.cfg.ID {
		return
	}
	if !n.inRing(a.Sender) {
		n.startGather()
		return
	}
	n.touchLiveness()
	n.memberAckAt[a.Sender] = time.Now()
	if a.Aru > n.memberAru[a.Sender] {
		n.memberAru[a.Sender] = a.Aru
	}
	n.updateStability()
	for _, s := range a.Nak {
		if m, ok := n.buffer[s]; ok {
			n.rebroadcastOrdered(s, m)
		}
		// A buffer miss means s is at or below the stability horizon —
		// the requester is proven to have received it — so the nak is a
		// stale crossing and is ignored.
	}
}

// handlePromote installs a sequencer (first receipt) or refreshes it
// (heartbeats). Heartbeats are the sequencer's liveness signal and carry
// the stability horizon for idle epochs.
func (n *Node) handlePromote(p promoteMsg) {
	if p.RingID != n.ringID {
		if p.RingID > n.ringID && !n.gathering {
			n.startGather()
		} else if p.RingID < n.ringID && !n.inRing(p.Leader) && !n.gathering {
			n.startGather() // concurrent foreign ring: merge
		}
		return
	}
	if n.gathering {
		return
	}
	if !n.inRing(p.Leader) {
		n.startGather()
		return
	}
	if n.cfg.Ordering != OrderingLeader {
		// A misconfigured peer promoted; refusing to adopt starves it of
		// acks and it demotes within its fail timeout.
		return
	}
	if !n.fpActive {
		n.adoptLeader(p.Leader, p.StartSeq, p.Stable)
		return
	}
	if n.leaderID != p.Leader {
		n.startGather() // conflicting sequencers: resolve through recovery
		return
	}
	n.promoteSeq = p.StartSeq
	n.setFastpathMirror(p.Leader, p.StartSeq)
	if n.leaderID == n.cfg.ID {
		return // own broadcast echo
	}
	n.touchLiveness()
	n.clearTokenResend()
	n.applyStable(p.Stable)
	// Answer immediately so the sequencer's failure detector sees this
	// member alive even when the epoch is idle.
	n.sendAck(time.Now())
}

// applyStable advances the follower's view of the stability horizon.
func (n *Node) applyStable(stable uint64) {
	if stable > n.leaderStable {
		n.leaderStable = stable
		n.gc(stable)
	}
}

// updateStability recomputes the sequencer's stability horizon: the
// minimum acked watermark across the ring (its own is deliveredSeq).
func (n *Node) updateStability() {
	min := n.deliveredSeq
	for _, m := range n.ring {
		if m == n.cfg.ID {
			continue
		}
		if a := n.memberAru[m]; a < min {
			min = a
		}
	}
	if min > n.leaderStable {
		n.leaderStable = min
		n.fpStableA.Store(min)
		n.gc(min)
		for s := range n.batchOrigin {
			if s <= min {
				delete(n.batchOrigin, s)
			}
		}
	}
}

// leaderHeartbeat runs on the sequencer's heartbeat timer: check member
// liveness through ack staleness, then re-announce the epoch.
func (n *Node) leaderHeartbeat(now time.Time) {
	if !n.fpActive || n.leaderID != n.cfg.ID {
		n.heartbeatAt = time.Time{}
		return
	}
	// Ack staleness is the sequencer's failure detector (it no longer
	// sees the token): a silent member demotes the ring back to
	// rotation, whose membership recovery sorts out who is alive.
	for _, m := range n.ring {
		if m == n.cfg.ID {
			continue
		}
		if at, ok := n.memberAckAt[m]; ok && now.Sub(at) > n.cfg.FailTimeout {
			n.startGather()
			return
		}
	}
	n.broadcastRaw(encodePromote(promoteMsg{
		RingID: n.ringID, Leader: n.cfg.ID, StartSeq: n.promoteSeq, Stable: n.leaderStable,
	}))
	n.heartbeatAt = now.Add(n.heartbeatInterval())
	// The members just proved live above; the sequencer's own fail timer
	// must not fire merely because an idle epoch has no inbound traffic.
	n.failDeadline = now.Add(n.cfg.FailTimeout)
}

// resendForwards retries forwards the sequencer has not ordered yet, and
// escapes through recovery when it never does.
func (n *Node) resendForwards(now time.Time) {
	if !n.fpActive || n.leaderID == n.cfg.ID || len(n.awaiting) == 0 {
		n.fwdResendAt = time.Time{}
		return
	}
	for i := range n.awaiting {
		a := &n.awaiting[i]
		a.resends++
		if a.resends > maxFwdResends {
			// The sequencer heartbeats but never orders our forwards:
			// wedged. Escape through membership recovery.
			n.startGather()
			return
		}
		n.broadcastRaw(encodeForward(forwardMsg{
			RingID: n.ringID, Sender: n.cfg.ID, FwdSeq: a.fwd, Parts: a.parts,
		}))
	}
	n.fwdResendAt = now.Add(n.cfg.TokenRetransmit)
}

// scheduleAck coalesces stability reports: the first watermark movement
// arms the timer, later ones ride along when it fires.
func (n *Node) scheduleAck() {
	if !n.fpActive || n.leaderID == n.cfg.ID {
		return
	}
	if n.ackDueAt.IsZero() {
		n.ackDueAt = time.Now().Add(n.ackDelay())
	}
}

// sendAck reports this follower's contiguous watermark plus
// retransmission requests for any observed gaps.
func (n *Node) sendAck(now time.Time) {
	if !n.fpActive || n.leaderID == n.cfg.ID {
		n.ackDueAt = time.Time{}
		return
	}
	a := ackMsg{RingID: n.ringID, Sender: n.cfg.ID, Aru: n.deliveredSeq}
	for s := n.deliveredSeq + 1; s <= n.highest && len(a.Nak) < maxNaks; s++ {
		if _, ok := n.buffer[s]; ok || n.skipped[s] {
			continue
		}
		a.Nak = append(a.Nak, s)
	}
	n.broadcastRaw(encodeAck(a))
	if len(a.Nak) > 0 {
		// Gaps outstanding: keep re-nakking until retransmissions land.
		n.ackDueAt = now.Add(n.cfg.TokenRetransmit)
	} else {
		n.ackDueAt = time.Time{}
	}
}
