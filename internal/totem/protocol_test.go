package totem

import (
	"fmt"
	"testing"
	"time"

	"eternalgw/internal/memnet"
)

// TestUnrecoverableGapIsSkipped forces a sequence-number gap that no
// ring member can fill: a message is "sent" with a future sequence
// number (as if the sender crashed after the token advanced but before
// anyone received the intermediate messages). The leader must age the
// retransmission requests, declare the missing numbers unrecoverable,
// and every member must keep delivering — in agreement — past the gap.
func TestUnrecoverableGapIsSkipped(t *testing.T) {
	c := newCluster(t, 3)
	for _, id := range c.ids {
		c.waitConfig(id, 3)
	}
	// Establish traffic so every node knows the current ring id.
	if err := c.nodes["n00"].Multicast([]byte("pre")); err != nil {
		t.Fatal(err)
	}
	var pre Delivery
	for _, id := range c.ids {
		pre = c.collect(id, 1)[0]
	}

	// Emulate the real unrecoverable scenario: n00 holds the token,
	// assigns sequence numbers pre+1..pre+5, only pre+5 reaches anyone,
	// and then n00 crashes taking the token (and the only copies of
	// pre+1..pre+4) with it.
	evil, err := c.net.Attach("evil")
	if err != nil {
		t.Fatal(err)
	}
	forged := regularMsg{
		RingID:  pre.RingID,
		Seq:     pre.Seq + 5,
		Sender:  "n00",
		Payload: []byte("future"),
	}
	if err := evil.Broadcast(encodeRegular(forged)); err != nil {
		t.Fatal(err)
	}
	c.net.Crash("n00")

	// The survivors reconfigure; the new token resumes from the highest
	// sequence number any survivor saw (pre+5), the missing pre+1..pre+4
	// are requested, found unrecoverable, and skipped.
	c.waitConfig("n01", 2)
	c.waitConfig("n02", 2)
	if err := c.nodes["n01"].Multicast([]byte("post")); err != nil {
		t.Fatal(err)
	}
	for _, id := range []memnet.NodeID{"n01", "n02"} {
		got := c.collect(id, 2)
		if string(got[0].Payload) != "future" || got[0].Seq != pre.Seq+5 {
			t.Fatalf("%s: first delivery = %+v, want the forged seq %d", id, got[0], pre.Seq+5)
		}
		if string(got[1].Payload) != "post" {
			t.Fatalf("%s: second delivery = %+v", id, got[1])
		}
	}
	// The new leader declared the gap's sequence numbers unrecoverable.
	if skipped := c.nodes["n01"].Stats().Skipped; skipped != 4 {
		t.Fatalf("skipped = %d, want 4", skipped)
	}
}

// TestAgreementPropertyUnderRandomLoss is a property-style test: for
// several loss seeds, all nodes must deliver identical sequences with
// strictly increasing sequence numbers and no duplicates.
func TestAgreementPropertyUnderRandomLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("loss sweep skipped in -short mode")
	}
	for _, seed := range []int64{1, 7, 99} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			c := newCluster(t, 3, memnet.WithSeed(seed), memnet.WithLoss(0.08), memnet.WithDuplication(0.05))
			for _, id := range c.ids {
				c.waitConfig(id, 3)
			}
			const per = 40
			for _, id := range c.ids {
				go func(n *Node, tag byte) {
					for i := 0; i < per; i++ {
						_ = n.Multicast([]byte{tag, byte(i)})
					}
				}(c.nodes[id], id[1])
			}
			total := per * len(c.ids)
			var ref []Delivery
			for _, id := range c.ids {
				got := c.collect(id, total)
				seen := make(map[uint64]bool, total)
				for i, d := range got {
					// With packing several payloads share a sequence
					// number; (Seq, Sub) folded into Timestamp must be
					// unique and strictly increasing.
					if seen[d.Timestamp()] {
						t.Fatalf("%s: duplicate (seq, sub) %d/%d", id, d.Seq, d.Sub)
					}
					seen[d.Timestamp()] = true
					if i > 0 && got[i].Timestamp() <= got[i-1].Timestamp() {
						t.Fatalf("%s: non-increasing timestamps %d -> %d", id, got[i-1].Timestamp(), got[i].Timestamp())
					}
				}
				if ref == nil {
					ref = got
					continue
				}
				for i := range ref {
					if got[i].Seq != ref[i].Seq || got[i].Sub != ref[i].Sub || string(got[i].Payload) != string(ref[i].Payload) {
						t.Fatalf("%s: delivery %d differs: %+v vs %+v", id, i, got[i], ref[i])
					}
				}
			}
		})
	}
}

// TestLargeRing exercises a 7-node ring end to end.
func TestLargeRing(t *testing.T) {
	c := newCluster(t, 7)
	for _, id := range c.ids {
		c.waitConfig(id, 7)
	}
	const per = 10
	for _, id := range c.ids {
		go func(n *Node) {
			for i := 0; i < per; i++ {
				_ = n.Multicast([]byte(n.ID()))
			}
		}(c.nodes[id])
	}
	total := per * len(c.ids)
	ref := c.collect(c.ids[0], total)
	last := c.collect(c.ids[6], total)
	for i := range ref {
		if ref[i].Seq != last[i].Seq || string(ref[i].Payload) != string(last[i].Payload) {
			t.Fatalf("delivery %d differs across the ring", i)
		}
	}
}

// TestSequentialReconfigurations kills members one at a time down to a
// singleton ring; delivery must continue after every reconfiguration.
func TestSequentialReconfigurations(t *testing.T) {
	c := newCluster(t, 4)
	for _, id := range c.ids {
		c.waitConfig(id, 4)
	}
	survivors := []memnet.NodeID{"n00", "n01", "n02", "n03"}
	for round := 0; round < 3; round++ {
		victim := survivors[len(survivors)-1]
		survivors = survivors[:len(survivors)-1]
		c.net.Crash(victim)
		c.waitConfig(survivors[0], len(survivors))
		payload := []byte(fmt.Sprintf("round-%d", round))
		if err := c.nodes[survivors[0]].Multicast(payload); err != nil {
			t.Fatal(err)
		}
		for _, id := range survivors {
			d := c.collect(id, 1)
			if string(d[0].Payload) != string(payload) {
				t.Fatalf("%s after round %d: %q", id, round, d[0].Payload)
			}
		}
	}
	if len(c.nodes["n00"].Members()) != 1 {
		t.Fatalf("final ring = %v", c.nodes["n00"].Members())
	}
}

// TestBurstLimitRespected checks that a large submission backlog drains
// over multiple token visits rather than one unbounded burst.
func TestBurstLimitRespected(t *testing.T) {
	net := memnet.New()
	ep, err := net.Attach("solo")
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastConfig()
	cfg.ID = "solo"
	cfg.Endpoint = ep
	cfg.Members = []memnet.NodeID{"solo"}
	cfg.MaxBurst = 8
	// Packing would drain the whole backlog in a couple of datagrams;
	// this test pins the per-message drain to exercise the burst limit.
	cfg.DisablePacking = true
	n, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Stop()

	const total = 50
	for i := 0; i < total; i++ {
		if err := n.Multicast([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.After(5 * time.Second)
	for got := 0; got < total; {
		select {
		case ev := <-n.Events():
			if ev.Type == EventDeliver {
				if ev.Delivery.Payload[0] != byte(got) {
					t.Fatalf("delivery %d out of order: %v", got, ev.Delivery.Payload)
				}
				got++
			}
		case <-deadline:
			t.Fatalf("timed out")
		}
	}
	// Draining 50 messages at burst 8 needs at least 7 token visits.
	if passes := n.Stats().TokenPasses; passes < 7 {
		t.Fatalf("token passes = %d, want >= 7", passes)
	}
}

// TestFlowControlFairness bounds per-rotation broadcasts and checks that
// two saturating senders interleave rather than one monopolizing the
// sequence space.
func TestFlowControlFairness(t *testing.T) {
	net := memnet.New()
	ids := []memnet.NodeID{"f0", "f1", "f2"}
	nodes := make(map[memnet.NodeID]*Node, 3)
	for _, id := range ids {
		ep, err := net.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		cfg := fastConfig()
		cfg.ID = id
		cfg.Endpoint = ep
		cfg.Members = ids
		cfg.WindowSize = 6 // fair share of 2 per member per rotation
		cfg.MaxBurst = 64
		// The window governs datagrams; with packing a single slot could
		// carry a sender's whole backlog. Pin the per-message drain so
		// the per-payload interleaving assertion below stays meaningful.
		cfg.DisablePacking = true
		n, err := Start(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(n.Stop)
		nodes[id] = n
	}
	// Wait for installation on every node.
	for _, id := range ids {
		deadline := time.After(5 * time.Second)
		for installed := false; !installed; {
			select {
			case ev := <-nodes[id].Events():
				installed = ev.Type == EventConfig && len(ev.Config.Members) == 3
			case <-deadline:
				t.Fatalf("%s: no ring", id)
			}
		}
	}
	// Two saturating senders submit everything up front.
	const per = 30
	for _, id := range []memnet.NodeID{"f1", "f2"} {
		for i := 0; i < per; i++ {
			if err := nodes[id].Multicast([]byte(id)); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Collect at the third node and check interleaving: within any
	// window of 8 consecutive deliveries, both senders must appear
	// (fair share is 2 per sender per rotation).
	var senders []memnet.NodeID
	deadline := time.After(10 * time.Second)
	for len(senders) < 2*per {
		select {
		case ev := <-nodes["f0"].Events():
			if ev.Type == EventDeliver {
				senders = append(senders, ev.Delivery.Sender)
			}
		case <-deadline:
			t.Fatalf("timed out after %d deliveries", len(senders))
		}
	}
	for start := 0; start+8 <= len(senders) && start < 2*per-8; start += 8 {
		seen := map[memnet.NodeID]bool{}
		for _, s := range senders[start : start+8] {
			seen[s] = true
		}
		if !seen["f1"] || !seen["f2"] {
			t.Fatalf("window at %d served only %v: flow control failed to interleave", start, senders[start:start+8])
		}
	}
}

// TestAgreementUnderReordering injects random per-packet delays (which
// reorder datagrams) and checks agreement: the protocol must tolerate
// out-of-order arrival, which UDP networks produce routinely.
func TestAgreementUnderReordering(t *testing.T) {
	c := newCluster(t, 3, memnet.WithSeed(5), memnet.WithMaxDelay(2*time.Millisecond))
	for _, id := range c.ids {
		c.waitConfig(id, 3)
	}
	const per = 25
	for _, id := range c.ids {
		go func(n *Node, tag byte) {
			for i := 0; i < per; i++ {
				_ = n.Multicast([]byte{tag, byte(i)})
			}
		}(c.nodes[id], id[1])
	}
	total := per * len(c.ids)
	ref := c.collect(c.ids[0], total)
	for _, id := range c.ids[1:] {
		got := c.collect(id, total)
		for i := range ref {
			if got[i].Seq != ref[i].Seq || string(got[i].Payload) != string(ref[i].Payload) {
				t.Fatalf("%s: delivery %d differs under reordering", id, i)
			}
		}
	}
}
