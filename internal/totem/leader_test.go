package totem

import (
	"fmt"
	"testing"
	"time"

	"eternalgw/internal/memnet"
)

// newLeaderCluster builds a cluster with the leader-ordered fast path
// enabled on every member.
func newLeaderCluster(t *testing.T, n int, opts ...memnet.Option) *cluster {
	t.Helper()
	return newClusterCfg(t, n, func(cfg *Config) { cfg.Ordering = OrderingLeader }, opts...)
}

// waitFastpath polls until every listed node reports the same installed
// sequencer and agreed switch sequence, returning them.
func (c *cluster) waitFastpath(ids ...memnet.NodeID) (memnet.NodeID, uint64) {
	c.t.Helper()
	if len(ids) == 0 {
		ids = c.ids
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		leader, start, ok := c.nodes[ids[0]].Fastpath()
		agreed := ok
		for _, id := range ids[1:] {
			l, s, k := c.nodes[id].Fastpath()
			if !k || l != leader || s != start {
				agreed = false
				break
			}
		}
		if agreed {
			return leader, start
		}
		time.Sleep(200 * time.Microsecond)
	}
	for _, id := range ids {
		l, s, ok := c.nodes[id].Fastpath()
		c.t.Logf("%s: fastpath leader=%q start=%d ok=%v", id, l, s, ok)
	}
	c.t.Fatal("timed out waiting for an agreed sequencer")
	return "", 0
}

func TestLeaderModePromotesAndOrders(t *testing.T) {
	c := newLeaderCluster(t, 3)
	for _, id := range c.ids {
		c.waitConfig(id, 3)
	}
	leader, start := c.waitFastpath()
	if _, ok := c.nodes[leader]; !ok {
		t.Fatalf("bogus leader %q", leader)
	}

	// Every node multicasts concurrently; all members must deliver the
	// identical sequence, entirely above the agreed switch sequence.
	const per = 50
	for _, id := range c.ids {
		go func(n *Node, tag byte) {
			for i := 0; i < per; i++ {
				_ = n.Multicast([]byte{tag, byte(i)})
			}
		}(c.nodes[id], id[1])
	}
	total := per * len(c.ids)
	seqs := make(map[memnet.NodeID][]Delivery)
	for _, id := range c.ids {
		seqs[id] = c.collect(id, total)
	}
	ref := seqs[c.ids[0]]
	for _, id := range c.ids[1:] {
		got := seqs[id]
		for i := range ref {
			if got[i].Seq != ref[i].Seq || got[i].Sub != ref[i].Sub || got[i].Sender != ref[i].Sender ||
				string(got[i].Payload) != string(ref[i].Payload) {
				t.Fatalf("%s delivery %d = %+v, %s has %+v", id, i, got[i], c.ids[0], ref[i])
			}
		}
	}
	for i, d := range ref {
		if d.Seq <= start {
			t.Fatalf("delivery %d at seq %d crosses the mode switch at %d", i, d.Seq, start)
		}
		if i > 0 && ref[i].Timestamp() <= ref[i-1].Timestamp() {
			t.Fatalf("non-increasing timestamps %d -> %d", ref[i-1].Timestamp(), ref[i].Timestamp())
		}
	}
	// Per-sender FIFO must hold in leader mode too.
	idx := map[memnet.NodeID]int{}
	for _, d := range ref {
		if d.Payload[1] != byte(idx[d.Sender]) {
			t.Fatalf("sender %s FIFO broken: got %d, want %d", d.Sender, d.Payload[1], idx[d.Sender])
		}
		idx[d.Sender]++
	}

	// The work went over the fast path: the sequencer batched, at least
	// one follower forwarded, and nobody fell back to the ring.
	st := c.nodes[leader].Stats()
	if st.LeaderBatches == 0 {
		t.Fatal("sequencer ordered no batches")
	}
	if st.Demotions != 0 {
		t.Fatalf("unexpected demotions: %d", st.Demotions)
	}
	var forwarded uint64
	for _, id := range c.ids {
		if id == leader {
			continue
		}
		forwarded += c.nodes[id].Stats().Forwarded
	}
	if forwarded == 0 {
		t.Fatal("no follower forwarded to the sequencer")
	}
}

func TestLeaderModeTokenRetiredAndPacingNoop(t *testing.T) {
	c := newLeaderCluster(t, 2)
	for _, id := range c.ids {
		c.waitConfig(id, 2)
	}
	c.waitFastpath()

	// Token passes must stop once the sequencer retires the token, and a
	// forged stale token must be dropped (never held, quartered, or
	// forwarded): token pacing is a no-op in leader mode.
	var passesBefore uint64
	for _, id := range c.ids {
		passesBefore += c.nodes[id].Stats().TokenPasses
	}
	ep, err := c.net.Attach("intruder")
	if err != nil {
		t.Fatal(err)
	}
	_ = ep.Broadcast(encodeToken(token{
		RingID:  c.nodes["n00"].RingID(),
		TokenID: 1 << 20, // fresher than anything the ring issued
		Succ:    "n01",
	}))
	time.Sleep(20 * time.Millisecond)
	var passesAfter uint64
	for _, id := range c.ids {
		passesAfter += c.nodes[id].Stats().TokenPasses
	}
	if passesAfter != passesBefore {
		t.Fatalf("token passes advanced in leader mode: %d -> %d", passesBefore, passesAfter)
	}

	// The ring still orders normally afterwards.
	if err := c.nodes["n01"].Multicast([]byte("alive")); err != nil {
		t.Fatal(err)
	}
	for _, id := range c.ids {
		d := c.collect(id, 1)
		if string(d[0].Payload) != "alive" {
			t.Fatalf("%s delivered %q", id, d[0].Payload)
		}
	}
}

func TestLeaderCrashDemotesToRingAndRepromotes(t *testing.T) {
	c := newLeaderCluster(t, 3)
	for _, id := range c.ids {
		c.waitConfig(id, 3)
	}
	leader, _ := c.waitFastpath()

	// Kill the sequencer with traffic in flight from every survivor.
	var survivors []memnet.NodeID
	for _, id := range c.ids {
		if id != leader {
			survivors = append(survivors, id)
		}
	}
	c.net.Crash(leader)
	for _, id := range survivors {
		if err := c.nodes[id].Multicast([]byte("mid-" + string(id))); err != nil {
			t.Fatal(err)
		}
	}

	// Survivors demote, install a 2-member ring, and keep delivering the
	// identical sequence (the in-flight payloads are requeued and
	// ordered by the recovered ring).
	delivered := make(map[memnet.NodeID][]Delivery)
	for _, id := range survivors {
		delivered[id] = c.waitConfig(id, 2)
	}
	for _, id := range survivors {
		need := 2 - len(delivered[id])
		if need > 0 {
			delivered[id] = append(delivered[id], c.collect(id, need)...)
		}
	}
	a, b := delivered[survivors[0]], delivered[survivors[1]]
	for i := range a {
		if a[i].Seq != b[i].Seq || string(a[i].Payload) != string(b[i].Payload) {
			t.Fatalf("survivors disagree at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	var demotions uint64
	for _, id := range survivors {
		demotions += c.nodes[id].Stats().Demotions
	}
	if demotions == 0 {
		t.Fatal("no survivor recorded a demotion")
	}

	// A fresh promotion follows on the survivor ring, agreed by both.
	leader2, start2 := c.waitFastpath(survivors...)
	if leader2 == leader {
		t.Fatalf("crashed node %s still sequencer", leader)
	}
	if err := c.nodes[survivors[0]].Multicast([]byte("post")); err != nil {
		t.Fatal(err)
	}
	for _, id := range survivors {
		d := c.collect(id, 1)
		if string(d[0].Payload) != "post" || d[0].Seq <= start2 {
			t.Fatalf("%s: post-promotion delivery %+v (switch at %d)", id, d[0], start2)
		}
	}
}

func TestLeaderModeAgreementUnderLossAndDuplication(t *testing.T) {
	if testing.Short() {
		t.Skip("loss sweep skipped in -short mode")
	}
	for _, seed := range []int64{1, 7, 99} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			c := newLeaderCluster(t, 3, memnet.WithSeed(seed), memnet.WithLoss(0.08), memnet.WithDuplication(0.05))
			for _, id := range c.ids {
				c.waitConfig(id, 3)
			}
			// No waitFastpath here: under loss the promotion itself may be
			// dropped and re-learned from heartbeats or batches while the
			// load is running — that path is part of what is under test.
			const per = 40
			for _, id := range c.ids {
				go func(n *Node, tag byte) {
					for i := 0; i < per; i++ {
						_ = n.Multicast([]byte{tag, byte(i)})
					}
				}(c.nodes[id], id[1])
			}
			total := per * len(c.ids)
			var ref []Delivery
			for _, id := range c.ids {
				got := c.collect(id, total)
				seen := make(map[uint64]bool, total)
				for i, d := range got {
					if seen[d.Timestamp()] {
						t.Fatalf("%s: duplicate delivery at timestamp %d", id, d.Timestamp())
					}
					seen[d.Timestamp()] = true
					if i > 0 && got[i].Timestamp() <= got[i-1].Timestamp() {
						t.Fatalf("%s: order violation at %d", id, i)
					}
				}
				if ref == nil {
					ref = got
					continue
				}
				for i := range ref {
					if got[i].Timestamp() != ref[i].Timestamp() || string(got[i].Payload) != string(ref[i].Payload) {
						t.Fatalf("%s delivery %d = %+v, first node has %+v", id, i, got[i], ref[i])
					}
				}
			}
		})
	}
}

func TestLeaderModeStabilityAdvancesAndGCs(t *testing.T) {
	c := newLeaderCluster(t, 3)
	for _, id := range c.ids {
		c.waitConfig(id, 3)
	}
	leader, _ := c.waitFastpath()
	const total = 60
	for i := 0; i < total; i++ {
		if err := c.nodes[leader].Multicast([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range c.ids {
		c.collect(id, total)
	}
	// Once all members ack, the stability horizon catches the assigned
	// sequence numbers and the lag gauge returns to zero.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if c.nodes[leader].Stats().StabilityLag == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stability lag stuck at %d", c.nodes[leader].Stats().StabilityLag)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestLeaderLagLimitDemotes(t *testing.T) {
	c := newClusterCfg(t, 3, func(cfg *Config) {
		cfg.Ordering = OrderingLeader
		cfg.FastpathLagLimit = 4
		// Keep liveness-based demotion out of the way so the lag limit is
		// what trips.
		cfg.FailTimeout = 2 * time.Second
		cfg.GatherTimeout = 20 * time.Millisecond
	})
	for _, id := range c.ids {
		c.waitConfig(id, 3)
	}
	leader, _ := c.waitFastpath()

	// Cut the followers off: the sequencer keeps ordering its own
	// submissions, cannot advance stability, and must demote at the lag
	// limit instead of buffering without bound.
	var followers []memnet.NodeID
	for _, id := range c.ids {
		if id != leader {
			followers = append(followers, id)
		}
	}
	c.net.Partition([]memnet.NodeID{leader}, followers)
	deadline := time.Now().Add(5 * time.Second)
	for i := 0; ; i++ {
		if err := c.nodes[leader].Multicast([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		if c.nodes[leader].Stats().Demotions > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no demotion after %d submissions with lag limit 4", i+1)
		}
		time.Sleep(100 * time.Microsecond)
	}
	// Heal and verify the merged ring still agrees.
	c.net.Heal()
	if err := c.nodes[followers[0]].Multicast([]byte("healed")); err != nil {
		t.Fatal(err)
	}
	deadline = time.Now().Add(10 * time.Second)
	for _, id := range c.ids {
		found := false
		for !found {
			if time.Now().After(deadline) {
				t.Fatalf("%s never delivered the post-heal payload", id)
			}
			select {
			case ev := <-c.nodes[id].Events():
				if ev.Type == EventDeliver && string(ev.Delivery.Payload) == "healed" {
					found = true
				}
			case <-time.After(50 * time.Millisecond):
			}
		}
	}
}

func TestRingAblationUnaffectedByOrderingKnob(t *testing.T) {
	// OrderingRing (the default) must not promote, whatever the traffic.
	c := newCluster(t, 3)
	for _, id := range c.ids {
		c.waitConfig(id, 3)
	}
	for i := 0; i < 20; i++ {
		if err := c.nodes["n00"].Multicast([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range c.ids {
		c.collect(id, 20)
	}
	time.Sleep(20 * time.Millisecond) // plenty of idle rotations
	for _, id := range c.ids {
		if _, _, ok := c.nodes[id].Fastpath(); ok {
			t.Fatalf("%s promoted a sequencer in ring mode", id)
		}
		st := c.nodes[id].Stats()
		if st.Promotions != 0 || st.LeaderBatches != 0 || st.Forwarded != 0 {
			t.Fatalf("%s: fastpath counters moved in ring mode: %+v", id, st)
		}
	}
}
