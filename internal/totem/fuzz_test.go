package totem

import (
	"testing"

	"eternalgw/internal/cdr"
	"eternalgw/internal/memnet"
)

// FuzzWireDecoders feeds arbitrary bytes through the ring's wire
// decoders.
func FuzzWireDecoders(f *testing.F) {
	f.Add(encodeRegular(regularMsg{RingID: 1, Seq: 2, Sender: "n", Payload: []byte("p")}))
	f.Add(encodeRegular(regularMsg{RingID: 1, Seq: 2, Sender: "n", Parts: [][]byte{[]byte("a"), []byte("b")}}))
	f.Add(encodeToken(token{RingID: 1, TokenID: 2, Seq: 3, Succ: "n", Rtr: []rtrEntry{{Seq: 1}}}))
	f.Add(encodeJoin(joinMsg{Sender: "n", Alive: []memnet.NodeID{"n"}, RingID: 1, Highest: 2, Aru: 1}))
	f.Add(encodeForward(forwardMsg{RingID: 1, Sender: "n", FwdSeq: 2, Parts: [][]byte{[]byte("p")}}))
	f.Add(encodeForward(forwardMsg{RingID: 1, Sender: "n", FwdSeq: 3, Parts: [][]byte{[]byte("a"), []byte("bb")}}))
	f.Add(encodeBatch(batchMsg{RingID: 1, Seq: 9, Leader: "l", Origin: "n", OriginFwd: 2, Stable: 5, Parts: [][]byte{[]byte("p")}}))
	f.Add(encodeAck(ackMsg{RingID: 1, Sender: "n", Aru: 7, Nak: []uint64{8, 9}}))
	f.Add(encodePromote(promoteMsg{RingID: 1, Leader: "l", StartSeq: 6, Stable: 6}))
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		r := cdr.NewReader(data, cdr.BigEndian)
		switch r.ReadOctet() {
		case kindRegular:
			_, _ = decodeRegular(r)
		case kindPacked:
			_, _ = decodePacked(r)
		case kindToken:
			_, _ = decodeToken(r)
		case kindJoin:
			_, _ = decodeJoin(r)
		case kindForward:
			_, _ = decodeForward(r)
		case kindBatch:
			_, _ = decodeBatch(r)
		case kindAck:
			_, _ = decodeAck(r)
		case kindPromote:
			_, _ = decodePromote(r)
		}
	})
}
