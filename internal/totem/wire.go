package totem

import (
	"fmt"

	"eternalgw/internal/cdr"
	"eternalgw/internal/memnet"
)

// Wire message kinds.
const (
	kindRegular byte = 1
	kindToken   byte = 2
	kindJoin    byte = 3
	kindPacked  byte = 4
)

// regularMsg is a sequenced application broadcast (possibly a
// retransmission, which is byte-identical except for the ring id being
// restamped to the current configuration).
//
// When Parts is non-nil the message is a packed broadcast: several
// application payloads sharing one sequence number and one datagram, as
// in the original Totem, where the token holder fills each packet with
// as many queued messages as fit. Packed messages occupy one buffer
// slot, one window slot and one retransmission unit; they are unpacked
// only at delivery, where each part becomes its own Delivery with a
// sub-index. Payload is unused when Parts is set.
type regularMsg struct {
	RingID  uint64
	Seq     uint64
	Sender  memnet.NodeID
	Payload []byte
	Parts   [][]byte
}

// token is the circulating ring token. Tokens are broadcast rather than
// unicast so every node (including nodes outside the ring) can use them
// for liveness and partition-merge detection; Succ names the one member
// that actually processes this token.
type token struct {
	RingID  uint64
	TokenID uint64 // monotonically increasing per ring; detects stale duplicates
	Seq     uint64 // highest sequence number assigned so far
	// Aru accumulates the minimum all-received-up-to value over the
	// current rotation: every node folds its own watermark in with min.
	Aru uint64
	// Stable is the confirmed global watermark: the Aru of the last
	// completed rotation, published by the leader. Every member is known
	// to have received all messages with seq <= Stable, so they may be
	// garbage-collected and their retransmission requests dropped.
	Stable uint64
	Succ   memnet.NodeID // the member this token is addressed to
	// Spent counts regular messages broadcast during the current token
	// rotation; the leader resets it. Together with Config.WindowSize it
	// implements Totem's flow control: a global bound on broadcasts per
	// rotation that keeps one busy node from monopolizing the ring.
	Spent uint32
	Rtr   []rtrEntry // outstanding retransmission requests
	Skip  []uint64   // sequence numbers declared unrecoverable
}

// rtrEntry is one retransmission request with its rotation age.
type rtrEntry struct {
	Seq uint64
	Age uint32
}

// joinMsg is a membership-recovery message.
type joinMsg struct {
	Sender  memnet.NodeID
	Alive   []memnet.NodeID
	RingID  uint64 // proposed new ring id
	Highest uint64 // sender's highest received sequence number
	Aru     uint64 // sender's contiguous received watermark
}

func encodeRegular(m regularMsg) []byte {
	if len(m.Parts) > 0 {
		size := 32 + len(m.Sender)
		for _, p := range m.Parts {
			size += 8 + len(p)
		}
		w := cdr.NewWriterCap(cdr.BigEndian, size)
		w.WriteOctet(kindPacked)
		w.WriteULongLong(m.RingID)
		w.WriteULongLong(m.Seq)
		w.WriteString(string(m.Sender))
		w.WriteULong(uint32(len(m.Parts)))
		for _, p := range m.Parts {
			w.WriteOctetSeq(p)
		}
		return w.Bytes()
	}
	w := cdr.NewWriterCap(cdr.BigEndian, 40+len(m.Sender)+len(m.Payload))
	w.WriteOctet(kindRegular)
	w.WriteULongLong(m.RingID)
	w.WriteULongLong(m.Seq)
	w.WriteString(string(m.Sender))
	w.WriteOctetSeq(m.Payload)
	return w.Bytes()
}

func decodeRegular(r *cdr.Reader) (regularMsg, error) {
	var m regularMsg
	m.RingID = r.ReadULongLong()
	m.Seq = r.ReadULongLong()
	m.Sender = memnet.NodeID(r.ReadString())
	payload := r.ReadOctetSeq()
	if err := r.Err(); err != nil {
		return regularMsg{}, fmt.Errorf("totem: decode regular: %w", err)
	}
	m.Payload = make([]byte, len(payload))
	copy(m.Payload, payload)
	return m, nil
}

// decodePacked parses the packed form: the regular header followed by a
// counted list of payloads.
func decodePacked(r *cdr.Reader) (regularMsg, error) {
	var m regularMsg
	m.RingID = r.ReadULongLong()
	m.Seq = r.ReadULongLong()
	m.Sender = memnet.NodeID(r.ReadString())
	n := r.ReadULong()
	// Each part costs at least its 4-byte length prefix, which bounds a
	// hostile count before any allocation happens.
	if r.Err() != nil || int(n) > r.Remaining()/4 {
		return regularMsg{}, fmt.Errorf("totem: decode packed: bad part count %d", n)
	}
	// One arena allocation per datagram instead of one per part: the
	// parts are copied out of the transport buffer into a single backing
	// buffer and delivered as capped subslices of it. Consumers treat
	// delivered payloads as read-only, so sharing the arena is safe; the
	// cap on each subslice keeps an append from bleeding into the next
	// part. The arena is sized at the reader's remainder, a slight
	// overestimate (length prefixes and padding), so it never regrows.
	m.Parts = make([][]byte, 0, n)
	arena := make([]byte, 0, r.Remaining())
	for i := uint32(0); i < n && r.Err() == nil; i++ {
		p := r.ReadOctetSeq()
		off := len(arena)
		arena = append(arena, p...)
		m.Parts = append(m.Parts, arena[off:len(arena):len(arena)])
	}
	if err := r.Err(); err != nil {
		return regularMsg{}, fmt.Errorf("totem: decode packed: %w", err)
	}
	if len(m.Parts) == 0 {
		return regularMsg{}, fmt.Errorf("totem: decode packed: empty pack")
	}
	return m, nil
}

func encodeToken(t token) []byte {
	w := cdr.NewWriter(cdr.BigEndian)
	w.WriteOctet(kindToken)
	w.WriteULongLong(t.RingID)
	w.WriteULongLong(t.TokenID)
	w.WriteULongLong(t.Seq)
	w.WriteULongLong(t.Aru)
	w.WriteULongLong(t.Stable)
	w.WriteString(string(t.Succ))
	w.WriteULong(t.Spent)
	w.WriteULong(uint32(len(t.Rtr)))
	for _, e := range t.Rtr {
		w.WriteULongLong(e.Seq)
		w.WriteULong(e.Age)
	}
	w.WriteULong(uint32(len(t.Skip)))
	for _, s := range t.Skip {
		w.WriteULongLong(s)
	}
	return w.Bytes()
}

func decodeToken(r *cdr.Reader) (token, error) {
	var t token
	t.RingID = r.ReadULongLong()
	t.TokenID = r.ReadULongLong()
	t.Seq = r.ReadULongLong()
	t.Aru = r.ReadULongLong()
	t.Stable = r.ReadULongLong()
	t.Succ = memnet.NodeID(r.ReadString())
	t.Spent = r.ReadULong()
	nRtr := r.ReadULong()
	if r.Err() == nil && int(nRtr) <= r.Remaining()/8 {
		t.Rtr = make([]rtrEntry, 0, nRtr)
		for i := uint32(0); i < nRtr && r.Err() == nil; i++ {
			t.Rtr = append(t.Rtr, rtrEntry{Seq: r.ReadULongLong(), Age: r.ReadULong()})
		}
	}
	nSkip := r.ReadULong()
	if r.Err() == nil && int(nSkip) <= r.Remaining()/8 {
		t.Skip = make([]uint64, 0, nSkip)
		for i := uint32(0); i < nSkip && r.Err() == nil; i++ {
			t.Skip = append(t.Skip, r.ReadULongLong())
		}
	}
	if err := r.Err(); err != nil {
		return token{}, fmt.Errorf("totem: decode token: %w", err)
	}
	return t, nil
}

func encodeJoin(j joinMsg) []byte {
	w := cdr.NewWriter(cdr.BigEndian)
	w.WriteOctet(kindJoin)
	w.WriteString(string(j.Sender))
	w.WriteULong(uint32(len(j.Alive)))
	for _, id := range j.Alive {
		w.WriteString(string(id))
	}
	w.WriteULongLong(j.RingID)
	w.WriteULongLong(j.Highest)
	w.WriteULongLong(j.Aru)
	return w.Bytes()
}

func decodeJoin(r *cdr.Reader) (joinMsg, error) {
	var j joinMsg
	j.Sender = memnet.NodeID(r.ReadString())
	n := r.ReadULong()
	if r.Err() == nil && int(n) <= r.Remaining()/4 {
		j.Alive = make([]memnet.NodeID, 0, n)
		for i := uint32(0); i < n && r.Err() == nil; i++ {
			j.Alive = append(j.Alive, memnet.NodeID(r.ReadString()))
		}
	}
	j.RingID = r.ReadULongLong()
	j.Highest = r.ReadULongLong()
	j.Aru = r.ReadULongLong()
	if err := r.Err(); err != nil {
		return joinMsg{}, fmt.Errorf("totem: decode join: %w", err)
	}
	return j, nil
}
