package totem

import (
	"fmt"

	"eternalgw/internal/cdr"
	"eternalgw/internal/memnet"
)

// Wire message kinds.
const (
	kindRegular byte = 1
	kindToken   byte = 2
	kindJoin    byte = 3
	kindPacked  byte = 4
	kindForward byte = 5 // leader mode: payloads forwarded to the sequencer
	kindBatch   byte = 6 // leader mode: an ordered batch from the sequencer
	kindAck     byte = 7 // leader mode: a follower's stability report
	kindPromote byte = 8 // leader mode: sequencer installation / heartbeat
)

// regularMsg is a sequenced application broadcast (possibly a
// retransmission, which is byte-identical except for the ring id being
// restamped to the current configuration).
//
// When Parts is non-nil the message is a packed broadcast: several
// application payloads sharing one sequence number and one datagram, as
// in the original Totem, where the token holder fills each packet with
// as many queued messages as fit. Packed messages occupy one buffer
// slot, one window slot and one retransmission unit; they are unpacked
// only at delivery, where each part becomes its own Delivery with a
// sub-index. Payload is unused when Parts is set.
type regularMsg struct {
	RingID  uint64
	Seq     uint64
	Sender  memnet.NodeID
	Payload []byte
	Parts   [][]byte
}

// token is the circulating ring token. Tokens are broadcast rather than
// unicast so every node (including nodes outside the ring) can use them
// for liveness and partition-merge detection; Succ names the one member
// that actually processes this token.
type token struct {
	RingID  uint64
	TokenID uint64 // monotonically increasing per ring; detects stale duplicates
	Seq     uint64 // highest sequence number assigned so far
	// Aru accumulates the minimum all-received-up-to value over the
	// current rotation: every node folds its own watermark in with min.
	Aru uint64
	// Stable is the confirmed global watermark: the Aru of the last
	// completed rotation, published by the leader. Every member is known
	// to have received all messages with seq <= Stable, so they may be
	// garbage-collected and their retransmission requests dropped.
	Stable uint64
	Succ   memnet.NodeID // the member this token is addressed to
	// Spent counts regular messages broadcast during the current token
	// rotation; the leader resets it. Together with Config.WindowSize it
	// implements Totem's flow control: a global bound on broadcasts per
	// rotation that keeps one busy node from monopolizing the ring.
	Spent uint32
	Rtr   []rtrEntry // outstanding retransmission requests
	Skip  []uint64   // sequence numbers declared unrecoverable
}

// rtrEntry is one retransmission request with its rotation age.
type rtrEntry struct {
	Seq uint64
	Age uint32
}

// joinMsg is a membership-recovery message.
type joinMsg struct {
	Sender  memnet.NodeID
	Alive   []memnet.NodeID
	RingID  uint64 // proposed new ring id
	Highest uint64 // sender's highest received sequence number
	Aru     uint64 // sender's contiguous received watermark
}

func encodeRegular(m regularMsg) []byte {
	if len(m.Parts) > 0 {
		size := 32 + len(m.Sender)
		for _, p := range m.Parts {
			size += 8 + len(p)
		}
		w := cdr.NewWriterCap(cdr.BigEndian, size)
		w.WriteOctet(kindPacked)
		w.WriteULongLong(m.RingID)
		w.WriteULongLong(m.Seq)
		w.WriteString(string(m.Sender))
		w.WriteULong(uint32(len(m.Parts)))
		for _, p := range m.Parts {
			w.WriteOctetSeq(p)
		}
		return w.Bytes()
	}
	w := cdr.NewWriterCap(cdr.BigEndian, 40+len(m.Sender)+len(m.Payload))
	w.WriteOctet(kindRegular)
	w.WriteULongLong(m.RingID)
	w.WriteULongLong(m.Seq)
	w.WriteString(string(m.Sender))
	w.WriteOctetSeq(m.Payload)
	return w.Bytes()
}

func decodeRegular(r *cdr.Reader) (regularMsg, error) {
	var m regularMsg
	m.RingID = r.ReadULongLong()
	m.Seq = r.ReadULongLong()
	m.Sender = memnet.NodeID(r.ReadString())
	payload := r.ReadOctetSeq()
	if err := r.Err(); err != nil {
		return regularMsg{}, fmt.Errorf("totem: decode regular: %w", err)
	}
	m.Payload = make([]byte, len(payload))
	copy(m.Payload, payload)
	return m, nil
}

// decodePacked parses the packed form: the regular header followed by a
// counted list of payloads.
func decodePacked(r *cdr.Reader) (regularMsg, error) {
	var m regularMsg
	m.RingID = r.ReadULongLong()
	m.Seq = r.ReadULongLong()
	m.Sender = memnet.NodeID(r.ReadString())
	n := r.ReadULong()
	// Each part costs at least its 4-byte length prefix, which bounds a
	// hostile count before any allocation happens.
	if r.Err() != nil || int(n) > r.Remaining()/4 {
		return regularMsg{}, fmt.Errorf("totem: decode packed: bad part count %d", n)
	}
	// One arena allocation per datagram instead of one per part: the
	// parts are copied out of the transport buffer into a single backing
	// buffer and delivered as capped subslices of it. Consumers treat
	// delivered payloads as read-only, so sharing the arena is safe; the
	// cap on each subslice keeps an append from bleeding into the next
	// part. The arena is sized at the reader's remainder, a slight
	// overestimate (length prefixes and padding), so it never regrows.
	m.Parts = make([][]byte, 0, n)
	arena := make([]byte, 0, r.Remaining())
	for i := uint32(0); i < n && r.Err() == nil; i++ {
		p := r.ReadOctetSeq()
		off := len(arena)
		arena = append(arena, p...)
		m.Parts = append(m.Parts, arena[off:len(arena):len(arena)])
	}
	if err := r.Err(); err != nil {
		return regularMsg{}, fmt.Errorf("totem: decode packed: %w", err)
	}
	if len(m.Parts) == 0 {
		return regularMsg{}, fmt.Errorf("totem: decode packed: empty pack")
	}
	return m, nil
}

func encodeToken(t token) []byte {
	w := cdr.NewWriter(cdr.BigEndian)
	w.WriteOctet(kindToken)
	w.WriteULongLong(t.RingID)
	w.WriteULongLong(t.TokenID)
	w.WriteULongLong(t.Seq)
	w.WriteULongLong(t.Aru)
	w.WriteULongLong(t.Stable)
	w.WriteString(string(t.Succ))
	w.WriteULong(t.Spent)
	w.WriteULong(uint32(len(t.Rtr)))
	for _, e := range t.Rtr {
		w.WriteULongLong(e.Seq)
		w.WriteULong(e.Age)
	}
	w.WriteULong(uint32(len(t.Skip)))
	for _, s := range t.Skip {
		w.WriteULongLong(s)
	}
	return w.Bytes()
}

func decodeToken(r *cdr.Reader) (token, error) {
	var t token
	t.RingID = r.ReadULongLong()
	t.TokenID = r.ReadULongLong()
	t.Seq = r.ReadULongLong()
	t.Aru = r.ReadULongLong()
	t.Stable = r.ReadULongLong()
	t.Succ = memnet.NodeID(r.ReadString())
	t.Spent = r.ReadULong()
	nRtr := r.ReadULong()
	if r.Err() != nil || int(nRtr) > r.Remaining()/8 {
		// A hostile count must fail the decode, not silently yield an
		// empty retransmission list: the reads after it would continue
		// from the middle of the entries and produce a garbage token.
		return token{}, fmt.Errorf("totem: decode token: bad rtr count %d", nRtr)
	}
	t.Rtr = make([]rtrEntry, 0, nRtr)
	for i := uint32(0); i < nRtr && r.Err() == nil; i++ {
		t.Rtr = append(t.Rtr, rtrEntry{Seq: r.ReadULongLong(), Age: r.ReadULong()})
	}
	nSkip := r.ReadULong()
	if r.Err() != nil || int(nSkip) > r.Remaining()/8 {
		return token{}, fmt.Errorf("totem: decode token: bad skip count %d", nSkip)
	}
	t.Skip = make([]uint64, 0, nSkip)
	for i := uint32(0); i < nSkip && r.Err() == nil; i++ {
		t.Skip = append(t.Skip, r.ReadULongLong())
	}
	if err := r.Err(); err != nil {
		return token{}, fmt.Errorf("totem: decode token: %w", err)
	}
	return t, nil
}

func encodeJoin(j joinMsg) []byte {
	w := cdr.NewWriter(cdr.BigEndian)
	w.WriteOctet(kindJoin)
	w.WriteString(string(j.Sender))
	w.WriteULong(uint32(len(j.Alive)))
	for _, id := range j.Alive {
		w.WriteString(string(id))
	}
	w.WriteULongLong(j.RingID)
	w.WriteULongLong(j.Highest)
	w.WriteULongLong(j.Aru)
	return w.Bytes()
}

// forwardMsg carries a follower's queued payloads to the sequencer in
// leader mode. FwdSeq numbers the sender's forwards within the current
// leader epoch, giving the sequencer a per-origin FIFO to order by and a
// way to recognize resent duplicates.
type forwardMsg struct {
	RingID uint64
	Sender memnet.NodeID
	FwdSeq uint64
	Parts  [][]byte
}

// batchMsg is one leader-ordered batch: the packed wire form plus the
// leader header. Each batch orders exactly one forward (Origin,
// OriginFwd), consumes one sequence number, and piggybacks the
// sequencer's current stability horizon so followers garbage-collect
// without a token.
type batchMsg struct {
	RingID    uint64
	Seq       uint64
	Leader    memnet.NodeID
	Origin    memnet.NodeID
	OriginFwd uint64
	Stable    uint64
	Parts     [][]byte
}

// ackMsg is a follower's stability report in leader mode: its contiguous
// received watermark plus retransmission requests for observed gaps. The
// sequencer folds the Aru values into the stability horizon that
// replaces the token-carried aru.
type ackMsg struct {
	RingID uint64
	Sender memnet.NodeID
	Aru    uint64
	Nak    []uint64
}

// promoteMsg installs (and then heartbeats) a sequencer. StartSeq is the
// agreed mode-switch sequence: the last ring-ordered sequence number,
// identical at every node, below which everything was token-ordered and
// above which everything is leader-ordered within this ring.
type promoteMsg struct {
	RingID   uint64
	Leader   memnet.NodeID
	StartSeq uint64
	Stable   uint64
}

func encodeForward(f forwardMsg) []byte {
	size := 40 + len(f.Sender)
	for _, p := range f.Parts {
		size += 8 + len(p)
	}
	w := cdr.NewWriterCap(cdr.BigEndian, size)
	w.WriteOctet(kindForward)
	w.WriteULongLong(f.RingID)
	w.WriteString(string(f.Sender))
	w.WriteULongLong(f.FwdSeq)
	w.WriteULong(uint32(len(f.Parts)))
	for _, p := range f.Parts {
		w.WriteOctetSeq(p)
	}
	return w.Bytes()
}

func decodeForward(r *cdr.Reader) (forwardMsg, error) {
	var f forwardMsg
	f.RingID = r.ReadULongLong()
	f.Sender = memnet.NodeID(r.ReadString())
	f.FwdSeq = r.ReadULongLong()
	n := r.ReadULong()
	// Each part costs at least its 4-byte length prefix, which bounds a
	// hostile count before any allocation happens.
	if r.Err() != nil || int(n) > r.Remaining()/4 {
		return forwardMsg{}, fmt.Errorf("totem: decode forward: bad part count %d", n)
	}
	f.Parts = make([][]byte, 0, n)
	arena := make([]byte, 0, r.Remaining())
	for i := uint32(0); i < n && r.Err() == nil; i++ {
		p := r.ReadOctetSeq()
		off := len(arena)
		arena = append(arena, p...)
		f.Parts = append(f.Parts, arena[off:len(arena):len(arena)])
	}
	if err := r.Err(); err != nil {
		return forwardMsg{}, fmt.Errorf("totem: decode forward: %w", err)
	}
	if len(f.Parts) == 0 {
		return forwardMsg{}, fmt.Errorf("totem: decode forward: empty forward")
	}
	return f, nil
}

func encodeBatch(b batchMsg) []byte {
	size := 64 + len(b.Leader) + len(b.Origin)
	for _, p := range b.Parts {
		size += 8 + len(p)
	}
	w := cdr.NewWriterCap(cdr.BigEndian, size)
	w.WriteOctet(kindBatch)
	w.WriteULongLong(b.RingID)
	w.WriteULongLong(b.Seq)
	w.WriteString(string(b.Leader))
	w.WriteString(string(b.Origin))
	w.WriteULongLong(b.OriginFwd)
	w.WriteULongLong(b.Stable)
	w.WriteULong(uint32(len(b.Parts)))
	for _, p := range b.Parts {
		w.WriteOctetSeq(p)
	}
	return w.Bytes()
}

func decodeBatch(r *cdr.Reader) (batchMsg, error) {
	var b batchMsg
	b.RingID = r.ReadULongLong()
	b.Seq = r.ReadULongLong()
	b.Leader = memnet.NodeID(r.ReadString())
	b.Origin = memnet.NodeID(r.ReadString())
	b.OriginFwd = r.ReadULongLong()
	b.Stable = r.ReadULongLong()
	n := r.ReadULong()
	if r.Err() != nil || int(n) > r.Remaining()/4 {
		return batchMsg{}, fmt.Errorf("totem: decode batch: bad part count %d", n)
	}
	// Same one-arena-per-datagram copy as decodePacked: parts are capped
	// subslices of a single backing buffer.
	b.Parts = make([][]byte, 0, n)
	arena := make([]byte, 0, r.Remaining())
	for i := uint32(0); i < n && r.Err() == nil; i++ {
		p := r.ReadOctetSeq()
		off := len(arena)
		arena = append(arena, p...)
		b.Parts = append(b.Parts, arena[off:len(arena):len(arena)])
	}
	if err := r.Err(); err != nil {
		return batchMsg{}, fmt.Errorf("totem: decode batch: %w", err)
	}
	if len(b.Parts) == 0 {
		return batchMsg{}, fmt.Errorf("totem: decode batch: empty batch")
	}
	return b, nil
}

func encodeAck(a ackMsg) []byte {
	w := cdr.NewWriterCap(cdr.BigEndian, 40+len(a.Sender)+8*len(a.Nak))
	w.WriteOctet(kindAck)
	w.WriteULongLong(a.RingID)
	w.WriteString(string(a.Sender))
	w.WriteULongLong(a.Aru)
	w.WriteULong(uint32(len(a.Nak)))
	for _, s := range a.Nak {
		w.WriteULongLong(s)
	}
	return w.Bytes()
}

func decodeAck(r *cdr.Reader) (ackMsg, error) {
	var a ackMsg
	a.RingID = r.ReadULongLong()
	a.Sender = memnet.NodeID(r.ReadString())
	a.Aru = r.ReadULongLong()
	n := r.ReadULong()
	// Each nak costs 8 bytes, which bounds a hostile count before any
	// allocation happens.
	if r.Err() != nil || int(n) > r.Remaining()/8 {
		return ackMsg{}, fmt.Errorf("totem: decode ack: bad nak count %d", n)
	}
	if n > 0 {
		a.Nak = make([]uint64, 0, n)
		for i := uint32(0); i < n && r.Err() == nil; i++ {
			a.Nak = append(a.Nak, r.ReadULongLong())
		}
	}
	if err := r.Err(); err != nil {
		return ackMsg{}, fmt.Errorf("totem: decode ack: %w", err)
	}
	return a, nil
}

func encodePromote(p promoteMsg) []byte {
	w := cdr.NewWriterCap(cdr.BigEndian, 40+len(p.Leader))
	w.WriteOctet(kindPromote)
	w.WriteULongLong(p.RingID)
	w.WriteString(string(p.Leader))
	w.WriteULongLong(p.StartSeq)
	w.WriteULongLong(p.Stable)
	return w.Bytes()
}

func decodePromote(r *cdr.Reader) (promoteMsg, error) {
	var p promoteMsg
	p.RingID = r.ReadULongLong()
	p.Leader = memnet.NodeID(r.ReadString())
	p.StartSeq = r.ReadULongLong()
	p.Stable = r.ReadULongLong()
	if err := r.Err(); err != nil {
		return promoteMsg{}, fmt.Errorf("totem: decode promote: %w", err)
	}
	return p, nil
}

func decodeJoin(r *cdr.Reader) (joinMsg, error) {
	var j joinMsg
	j.Sender = memnet.NodeID(r.ReadString())
	n := r.ReadULong()
	if r.Err() != nil || int(n) > r.Remaining()/4 {
		return joinMsg{}, fmt.Errorf("totem: decode join: bad alive count %d", n)
	}
	j.Alive = make([]memnet.NodeID, 0, n)
	for i := uint32(0); i < n && r.Err() == nil; i++ {
		j.Alive = append(j.Alive, memnet.NodeID(r.ReadString()))
	}
	j.RingID = r.ReadULongLong()
	j.Highest = r.ReadULongLong()
	j.Aru = r.ReadULongLong()
	if err := r.Err(); err != nil {
		return joinMsg{}, fmt.Errorf("totem: decode join: %w", err)
	}
	return j, nil
}
