package totem

import (
	"testing"
	"time"

	"eternalgw/internal/memnet"
)

// TestPackingBundlesBacklog checks the packing mechanics directly: a
// backlog submitted to an idle single-node ring drains in far fewer
// datagrams than payloads, each payload arrives in order with its
// sub-index, and the counters account for the packs.
func TestPackingBundlesBacklog(t *testing.T) {
	c := newCluster(t, 1)
	c.waitConfig("n00", 1)
	n := c.nodes["n00"]

	// Submit the backlog in one gulp while the ring is idle; the next
	// token visit packs it.
	const total = 100
	for i := 0; i < total; i++ {
		if err := n.Multicast([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	ds := c.collect("n00", total)
	for i, d := range ds {
		if d.Payload[0] != byte(i) {
			t.Fatalf("delivery %d = %v, submission order lost", i, d.Payload)
		}
		if i > 0 && ds[i].Timestamp() <= ds[i-1].Timestamp() {
			t.Fatalf("non-increasing timestamps at %d", i)
		}
	}
	st := n.Stats()
	if st.PackedMsgs == 0 || st.PackedParts < 2 {
		t.Fatalf("no packing happened: %+v", st)
	}
	if st.Broadcast >= total {
		t.Fatalf("broadcast %d datagrams for %d payloads; packing saved nothing", st.Broadcast, total)
	}
}

// TestPackingUnderLossyNetwork is the safety test for packing: under
// packet loss and duplication, every node must deliver the identical
// payload sequence in total order, with no duplicate and no missing
// (Seq, Sub), and retransmitted packs must unpack the same way.
func TestPackingUnderLossyNetwork(t *testing.T) {
	c := newCluster(t, 3, memnet.WithSeed(13), memnet.WithLoss(0.10), memnet.WithDuplication(0.05))
	for _, id := range c.ids {
		c.waitConfig(id, 3)
	}
	const per = 60
	for _, id := range c.ids {
		go func(n *Node, tag byte) {
			for i := 0; i < per; i++ {
				_ = n.Multicast([]byte{tag, byte(i)})
			}
		}(c.nodes[id], id[1])
	}
	total := per * len(c.ids)
	var ref []Delivery
	for _, id := range c.ids {
		got := c.collect(id, total)
		seen := make(map[uint64]bool, total)
		perSender := make(map[memnet.NodeID]byte, 3)
		for i, d := range got {
			if seen[d.Timestamp()] {
				t.Fatalf("%s: duplicate delivery (seq %d, sub %d)", id, d.Seq, d.Sub)
			}
			seen[d.Timestamp()] = true
			if i > 0 && got[i].Timestamp() <= got[i-1].Timestamp() {
				t.Fatalf("%s: order violated at %d", id, i)
			}
			// Sender FIFO: each sender's payloads carry its own counter.
			if d.Payload[1] != perSender[d.Sender] {
				t.Fatalf("%s: sender %s payload %d, want %d", id, d.Sender, d.Payload[1], perSender[d.Sender])
			}
			perSender[d.Sender]++
		}
		if ref == nil {
			ref = got
			continue
		}
		for i := range ref {
			if got[i].Seq != ref[i].Seq || got[i].Sub != ref[i].Sub ||
				got[i].Sender != ref[i].Sender || string(got[i].Payload) != string(ref[i].Payload) {
				t.Fatalf("%s: delivery %d differs: %+v vs %+v", id, i, got[i], ref[i])
			}
		}
	}
	var packed uint64
	for _, id := range c.ids {
		packed += c.nodes[id].Stats().PackedMsgs
	}
	if packed == 0 {
		t.Fatal("no packed messages originated; the test exercised nothing")
	}
}

// TestPackingRespectsBounds checks the pack limits: MaxPackCount caps the
// payloads per sequence number, and a payload larger than MaxPackBytes
// still travels (alone).
func TestPackingRespectsBounds(t *testing.T) {
	net := memnet.New()
	ep, err := net.Attach("solo")
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastConfig()
	cfg.ID = "solo"
	cfg.Endpoint = ep
	cfg.Members = []memnet.NodeID{"solo"}
	cfg.MaxPackCount = 4
	cfg.MaxPackBytes = 64
	n, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Stop()
	deadline := time.After(5 * time.Second)
	for installed := false; !installed; {
		select {
		case ev := <-n.Events():
			installed = ev.Type == EventConfig
		case <-deadline:
			t.Fatal("no ring")
		}
	}

	const small = 20
	for i := 0; i < small; i++ {
		if err := n.Multicast([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	big := make([]byte, 200) // > MaxPackBytes: must still travel
	if err := n.Multicast(big); err != nil {
		t.Fatal(err)
	}

	perSeq := make(map[uint64]int)
	got := 0
	deadline = time.After(5 * time.Second)
	for got < small+1 {
		select {
		case ev := <-n.Events():
			if ev.Type != EventDeliver {
				continue
			}
			d := ev.Delivery
			perSeq[d.Seq]++
			if got == small && len(d.Payload) != len(big) {
				t.Fatalf("oversized payload arrived with %d bytes, want %d", len(d.Payload), len(big))
			}
			got++
		case <-deadline:
			t.Fatalf("timed out after %d deliveries", got)
		}
	}
	for seq, parts := range perSeq {
		if parts > cfg.MaxPackCount {
			t.Fatalf("seq %d carried %d payloads, cap is %d", seq, parts, cfg.MaxPackCount)
		}
	}
}

// TestDisablePackingDeliversPlain checks the ablation path: with packing
// off every delivery is its own sequence number (Sub always zero).
func TestDisablePackingDeliversPlain(t *testing.T) {
	net := memnet.New()
	ep, err := net.Attach("solo")
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastConfig()
	cfg.ID = "solo"
	cfg.Endpoint = ep
	cfg.Members = []memnet.NodeID{"solo"}
	cfg.DisablePacking = true
	n, err := Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Stop()
	deadline := time.After(5 * time.Second)
	for installed := false; !installed; {
		select {
		case ev := <-n.Events():
			installed = ev.Type == EventConfig
		case <-deadline:
			t.Fatal("no ring")
		}
	}
	const total = 30
	for i := 0; i < total; i++ {
		if err := n.Multicast([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	got := 0
	deadline = time.After(5 * time.Second)
	var last uint64
	for got < total {
		select {
		case ev := <-n.Events():
			if ev.Type != EventDeliver {
				continue
			}
			d := ev.Delivery
			if d.Sub != 0 {
				t.Fatalf("packing disabled but delivery has sub-index %d", d.Sub)
			}
			if got > 0 && d.Seq != last+1 {
				t.Fatalf("non-contiguous seqs %d -> %d", last, d.Seq)
			}
			last = d.Seq
			got++
		case <-deadline:
			t.Fatalf("timed out after %d deliveries", got)
		}
	}
	if st := n.Stats(); st.PackedMsgs != 0 {
		t.Fatalf("packed %d messages with packing disabled", st.PackedMsgs)
	}
}
