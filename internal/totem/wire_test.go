package totem

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"

	"eternalgw/internal/cdr"
	"eternalgw/internal/memnet"
)

func decodeFrame(t *testing.T, b []byte, wantKind byte) *cdr.Reader {
	t.Helper()
	r := cdr.NewReader(b, cdr.BigEndian)
	if k := r.ReadOctet(); k != wantKind {
		t.Fatalf("kind = %d, want %d", k, wantKind)
	}
	return r
}

func TestRegularRoundTrip(t *testing.T) {
	m := regularMsg{RingID: 3, Seq: 99, Sender: "n2", Payload: []byte("abc")}
	got, err := decodeRegular(decodeFrame(t, encodeRegular(m), kindRegular))
	if err != nil {
		t.Fatal(err)
	}
	if got.RingID != 3 || got.Seq != 99 || got.Sender != "n2" || !bytes.Equal(got.Payload, []byte("abc")) {
		t.Fatalf("got %+v", got)
	}
}

func TestTokenRoundTrip(t *testing.T) {
	tok := token{
		RingID:  7,
		TokenID: 1234,
		Seq:     500,
		Aru:     480,
		Stable:  480,
		Succ:    "n3",
		Rtr:     []rtrEntry{{Seq: 481, Age: 2}, {Seq: 483}},
		Skip:    []uint64{460, 470},
	}
	got, err := decodeToken(decodeFrame(t, encodeToken(tok), kindToken))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tok) {
		t.Fatalf("got %+v, want %+v", got, tok)
	}
}

func TestTokenRoundTripEmptyLists(t *testing.T) {
	tok := token{RingID: 1, TokenID: 1, Succ: "a"}
	got, err := decodeToken(decodeFrame(t, encodeToken(tok), kindToken))
	if err != nil {
		t.Fatal(err)
	}
	if got.RingID != 1 || got.Succ != "a" || len(got.Rtr) != 0 || len(got.Skip) != 0 {
		t.Fatalf("got %+v", got)
	}
}

func TestJoinRoundTrip(t *testing.T) {
	jm := joinMsg{
		Sender:  "n5",
		Alive:   []memnet.NodeID{"n1", "n5", "n9"},
		RingID:  12,
		Highest: 4000,
		Aru:     3999,
	}
	got, err := decodeJoin(decodeFrame(t, encodeJoin(jm), kindJoin))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, jm) {
		t.Fatalf("got %+v, want %+v", got, jm)
	}
}

func TestQuickTokenRoundTrip(t *testing.T) {
	f := func(ringID, tokenID, seq, aru uint64, rtrSeqs []uint64, skip []uint64) bool {
		tok := token{RingID: ringID, TokenID: tokenID, Seq: seq, Aru: aru, Stable: aru / 2, Succ: "y"}
		for _, s := range rtrSeqs {
			tok.Rtr = append(tok.Rtr, rtrEntry{Seq: s, Age: uint32(s % 7)})
		}
		tok.Skip = skip
		got, err := decodeToken(cdrSkipKind(encodeToken(tok)))
		if err != nil {
			return false
		}
		return reflect.DeepEqual(normalizeToken(got), normalizeToken(tok))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDecodersNeverPanic(t *testing.T) {
	f := func(data []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		r := cdr.NewReader(data, cdr.BigEndian)
		switch r.ReadOctet() {
		case kindRegular:
			_, _ = decodeRegular(r)
		case kindToken:
			_, _ = decodeToken(r)
		case kindJoin:
			_, _ = decodeJoin(r)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func cdrSkipKind(b []byte) *cdr.Reader {
	r := cdr.NewReader(b, cdr.BigEndian)
	r.ReadOctet()
	return r
}

// normalizeToken maps nil and empty slices to a canonical form for
// DeepEqual comparison.
func normalizeToken(t token) token {
	if len(t.Rtr) == 0 {
		t.Rtr = nil
	}
	if len(t.Skip) == 0 {
		t.Skip = nil
	}
	return t
}
