package totem

import (
	"bytes"
	"reflect"
	"testing"
	"testing/quick"

	"eternalgw/internal/cdr"
	"eternalgw/internal/memnet"
)

func decodeFrame(t *testing.T, b []byte, wantKind byte) *cdr.Reader {
	t.Helper()
	r := cdr.NewReader(b, cdr.BigEndian)
	if k := r.ReadOctet(); k != wantKind {
		t.Fatalf("kind = %d, want %d", k, wantKind)
	}
	return r
}

func TestRegularRoundTrip(t *testing.T) {
	m := regularMsg{RingID: 3, Seq: 99, Sender: "n2", Payload: []byte("abc")}
	got, err := decodeRegular(decodeFrame(t, encodeRegular(m), kindRegular))
	if err != nil {
		t.Fatal(err)
	}
	if got.RingID != 3 || got.Seq != 99 || got.Sender != "n2" || !bytes.Equal(got.Payload, []byte("abc")) {
		t.Fatalf("got %+v", got)
	}
}

func TestTokenRoundTrip(t *testing.T) {
	tok := token{
		RingID:  7,
		TokenID: 1234,
		Seq:     500,
		Aru:     480,
		Stable:  480,
		Succ:    "n3",
		Rtr:     []rtrEntry{{Seq: 481, Age: 2}, {Seq: 483}},
		Skip:    []uint64{460, 470},
	}
	got, err := decodeToken(decodeFrame(t, encodeToken(tok), kindToken))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tok) {
		t.Fatalf("got %+v, want %+v", got, tok)
	}
}

func TestTokenRoundTripEmptyLists(t *testing.T) {
	tok := token{RingID: 1, TokenID: 1, Succ: "a"}
	got, err := decodeToken(decodeFrame(t, encodeToken(tok), kindToken))
	if err != nil {
		t.Fatal(err)
	}
	if got.RingID != 1 || got.Succ != "a" || len(got.Rtr) != 0 || len(got.Skip) != 0 {
		t.Fatalf("got %+v", got)
	}
}

func TestJoinRoundTrip(t *testing.T) {
	jm := joinMsg{
		Sender:  "n5",
		Alive:   []memnet.NodeID{"n1", "n5", "n9"},
		RingID:  12,
		Highest: 4000,
		Aru:     3999,
	}
	got, err := decodeJoin(decodeFrame(t, encodeJoin(jm), kindJoin))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, jm) {
		t.Fatalf("got %+v, want %+v", got, jm)
	}
}

func TestQuickTokenRoundTrip(t *testing.T) {
	f := func(ringID, tokenID, seq, aru uint64, rtrSeqs []uint64, skip []uint64) bool {
		tok := token{RingID: ringID, TokenID: tokenID, Seq: seq, Aru: aru, Stable: aru / 2, Succ: "y"}
		for _, s := range rtrSeqs {
			tok.Rtr = append(tok.Rtr, rtrEntry{Seq: s, Age: uint32(s % 7)})
		}
		tok.Skip = skip
		got, err := decodeToken(cdrSkipKind(encodeToken(tok)))
		if err != nil {
			return false
		}
		return reflect.DeepEqual(normalizeToken(got), normalizeToken(tok))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestForwardRoundTrip(t *testing.T) {
	fm := forwardMsg{RingID: 5, Sender: "n7", FwdSeq: 42, Parts: [][]byte{[]byte("one"), []byte("two"), {}}}
	got, err := decodeForward(decodeFrame(t, encodeForward(fm), kindForward))
	if err != nil {
		t.Fatal(err)
	}
	if got.RingID != 5 || got.Sender != "n7" || got.FwdSeq != 42 || len(got.Parts) != 3 {
		t.Fatalf("got %+v", got)
	}
	for i := range fm.Parts {
		if !bytes.Equal(got.Parts[i], fm.Parts[i]) {
			t.Fatalf("part %d = %q, want %q", i, got.Parts[i], fm.Parts[i])
		}
	}
}

func TestForwardRejectsEmptyAndHostile(t *testing.T) {
	if _, err := decodeForward(cdrSkipKind(encodeForward(forwardMsg{RingID: 1, Sender: "n"}))); err == nil {
		t.Fatal("empty forward decoded")
	}
	// A hostile part count larger than the remaining bytes could carry
	// must be rejected before allocation.
	w := cdr.NewWriter(cdr.BigEndian)
	w.WriteOctet(kindForward)
	w.WriteULongLong(1)
	w.WriteString("n")
	w.WriteULongLong(1)
	w.WriteULong(1 << 30)
	if _, err := decodeForward(cdrSkipKind(w.Bytes())); err == nil {
		t.Fatal("hostile part count decoded")
	}
}

func TestBatchRoundTrip(t *testing.T) {
	bm := batchMsg{
		RingID: 9, Seq: 1234, Leader: "n0", Origin: "n2", OriginFwd: 17, Stable: 1200,
		Parts: [][]byte{[]byte("payload")},
	}
	got, err := decodeBatch(decodeFrame(t, encodeBatch(bm), kindBatch))
	if err != nil {
		t.Fatal(err)
	}
	if got.RingID != 9 || got.Seq != 1234 || got.Leader != "n0" || got.Origin != "n2" ||
		got.OriginFwd != 17 || got.Stable != 1200 || len(got.Parts) != 1 || !bytes.Equal(got.Parts[0], bm.Parts[0]) {
		t.Fatalf("got %+v", got)
	}
}

func TestAckRoundTrip(t *testing.T) {
	am := ackMsg{RingID: 2, Sender: "n1", Aru: 800, Nak: []uint64{801, 803}}
	got, err := decodeAck(decodeFrame(t, encodeAck(am), kindAck))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, am) {
		t.Fatalf("got %+v, want %+v", got, am)
	}
	// Empty nak list survives too.
	am2 := ackMsg{RingID: 2, Sender: "n1", Aru: 801}
	got2, err := decodeAck(cdrSkipKind(encodeAck(am2)))
	if err != nil {
		t.Fatal(err)
	}
	if got2.Aru != 801 || len(got2.Nak) != 0 {
		t.Fatalf("got %+v", got2)
	}
}

func TestPromoteRoundTrip(t *testing.T) {
	pm := promoteMsg{RingID: 3, Leader: "n0", StartSeq: 555, Stable: 555}
	got, err := decodePromote(decodeFrame(t, encodePromote(pm), kindPromote))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, pm) {
		t.Fatalf("got %+v, want %+v", got, pm)
	}
}

func TestQuickForwardBatchRoundTrip(t *testing.T) {
	f := func(ringID, fwd uint64, payloads [][]byte) bool {
		if len(payloads) == 0 {
			payloads = [][]byte{{}}
		}
		fm := forwardMsg{RingID: ringID, Sender: "q", FwdSeq: fwd, Parts: payloads}
		gotF, err := decodeForward(cdrSkipKind(encodeForward(fm)))
		if err != nil || gotF.FwdSeq != fwd || len(gotF.Parts) != len(payloads) {
			return false
		}
		bm := batchMsg{RingID: ringID, Seq: fwd + 1, Leader: "l", Origin: "q", OriginFwd: fwd, Stable: fwd / 2, Parts: payloads}
		gotB, err := decodeBatch(cdrSkipKind(encodeBatch(bm)))
		if err != nil || gotB.Seq != fwd+1 || gotB.Origin != "q" || len(gotB.Parts) != len(payloads) {
			return false
		}
		for i := range payloads {
			if !bytes.Equal(gotF.Parts[i], payloads[i]) || !bytes.Equal(gotB.Parts[i], payloads[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDecodersNeverPanic(t *testing.T) {
	f := func(data []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		r := cdr.NewReader(data, cdr.BigEndian)
		switch r.ReadOctet() {
		case kindRegular:
			_, _ = decodeRegular(r)
		case kindToken:
			_, _ = decodeToken(r)
		case kindJoin:
			_, _ = decodeJoin(r)
		case kindForward:
			_, _ = decodeForward(r)
		case kindBatch:
			_, _ = decodeBatch(r)
		case kindAck:
			_, _ = decodeAck(r)
		case kindPromote:
			_, _ = decodePromote(r)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestTruncatedLeaderFramesRejected slices every prefix of valid
// leader-mode frames through the decoders: truncation must error, never
// panic or return success.
func TestTruncatedLeaderFramesRejected(t *testing.T) {
	frames := [][]byte{
		encodeForward(forwardMsg{RingID: 1, Sender: "n1", FwdSeq: 2, Parts: [][]byte{[]byte("abc"), []byte("defg")}}),
		encodeBatch(batchMsg{RingID: 1, Seq: 3, Leader: "n0", Origin: "n1", OriginFwd: 2, Stable: 1, Parts: [][]byte{[]byte("abc")}}),
		encodeAck(ackMsg{RingID: 1, Sender: "n1", Aru: 3, Nak: []uint64{4}}),
		encodePromote(promoteMsg{RingID: 1, Leader: "n0", StartSeq: 3, Stable: 3}),
	}
	for _, frame := range frames {
		kind := frame[0]
		for cut := 1; cut < len(frame); cut++ {
			r := cdr.NewReader(frame[:cut], cdr.BigEndian)
			var err error
			switch r.ReadOctet() {
			case kindForward:
				_, err = decodeForward(r)
			case kindBatch:
				_, err = decodeBatch(r)
			case kindAck:
				_, err = decodeAck(r)
			case kindPromote:
				_, err = decodePromote(r)
			}
			if err == nil && cut < len(frame) {
				t.Fatalf("kind %d truncated at %d/%d decoded without error", kind, cut, len(frame))
			}
		}
	}
}

func cdrSkipKind(b []byte) *cdr.Reader {
	r := cdr.NewReader(b, cdr.BigEndian)
	r.ReadOctet()
	return r
}

// normalizeToken maps nil and empty slices to a canonical form for
// DeepEqual comparison.
func normalizeToken(t token) token {
	if len(t.Rtr) == 0 {
		t.Rtr = nil
	}
	if len(t.Skip) == 0 {
		t.Skip = nil
	}
	return t
}
