// Package giop implements the General Inter-ORB Protocol (GIOP) version
// 1.0 message formats that the Internet Inter-ORB Protocol (IIOP) carries
// over TCP, as specified in CORBA 2.3 chapter 15.
//
// The package provides message framing (the 12-byte GIOP header), and
// encoding/decoding of Request, Reply, CancelRequest, LocateRequest,
// LocateReply, CloseConnection and MessageError messages, together with
// the service-context lists that Eternal's enhanced clients use to carry
// fault-tolerance client identifiers (paper section 3.5).
package giop

import (
	"errors"
	"fmt"
	"io"
	"sync"

	"eternalgw/internal/cdr"
)

// HeaderSize is the fixed size of the GIOP message header.
const HeaderSize = 12

// MaxMessageSize bounds accepted message bodies to guard against corrupt
// or hostile length fields.
const MaxMessageSize = 16 << 20

// magic is the GIOP header magic.
var magic = [4]byte{'G', 'I', 'O', 'P'}

// Errors reported by the framing layer.
var (
	ErrBadMagic   = errors.New("giop: bad magic")
	ErrBadVersion = errors.New("giop: unsupported GIOP version")
	ErrTooLarge   = errors.New("giop: message exceeds maximum size")
)

// MsgType identifies the GIOP message kind carried after the header.
type MsgType uint8

// GIOP 1.0 message types.
const (
	MsgRequest       MsgType = 0
	MsgReply         MsgType = 1
	MsgCancelRequest MsgType = 2
	MsgLocateRequest MsgType = 3
	MsgLocateReply   MsgType = 4
	MsgCloseConn     MsgType = 5
	MsgError         MsgType = 6
)

// String returns the spec name of the message type.
func (t MsgType) String() string {
	switch t {
	case MsgRequest:
		return "Request"
	case MsgReply:
		return "Reply"
	case MsgCancelRequest:
		return "CancelRequest"
	case MsgLocateRequest:
		return "LocateRequest"
	case MsgLocateReply:
		return "LocateReply"
	case MsgCloseConn:
		return "CloseConnection"
	case MsgError:
		return "MessageError"
	default:
		return fmt.Sprintf("MsgType(%d)", uint8(t))
	}
}

// ReplyStatus is the GIOP reply status enumeration.
type ReplyStatus uint32

// Reply status values.
const (
	ReplyNoException     ReplyStatus = 0
	ReplyUserException   ReplyStatus = 1
	ReplySystemException ReplyStatus = 2
	ReplyLocationForward ReplyStatus = 3
)

// String returns the spec name of the reply status.
func (s ReplyStatus) String() string {
	switch s {
	case ReplyNoException:
		return "NO_EXCEPTION"
	case ReplyUserException:
		return "USER_EXCEPTION"
	case ReplySystemException:
		return "SYSTEM_EXCEPTION"
	case ReplyLocationForward:
		return "LOCATION_FORWARD"
	default:
		return fmt.Sprintf("ReplyStatus(%d)", uint32(s))
	}
}

// Completion status values for system-exception bodies (CORBA
// completion_status). The distinction carries the §3.3 exactly-once
// contract to the client: COMPLETED_NO promises the request never
// entered the total order so a retry is always safe, COMPLETED_MAYBE
// says the outcome is genuinely unknown, COMPLETED_YES says the target
// ran. Every SystemExceptionBody call must pass one of these named
// constants — the completedno analyzer (cmd/gwlint) rejects bare
// literals and checks the status against the exception's repository ID.
const (
	CompletedYes   uint32 = 0
	CompletedNo    uint32 = 1
	CompletedMaybe uint32 = 2
)

// LocateStatus is the GIOP locate reply status enumeration.
type LocateStatus uint32

// Locate status values.
const (
	LocateUnknownObject LocateStatus = 0
	LocateObjectHere    LocateStatus = 1
	LocateForward       LocateStatus = 2
)

// ServiceContext is one entry of a GIOP service-context list. Eternal's
// enhanced client-side interception layer uses a private context id to
// carry its unique client identifier; ORBs that do not understand the id
// ignore the entry (paper section 3.5).
type ServiceContext struct {
	ID   uint32
	Data []byte
}

// FTClientContextID is the private service-context id used by the
// enhanced client-side interception layer. The high three bytes spell
// "FT" plus a vendor nibble, chosen to avoid OMG-assigned ranges.
const FTClientContextID uint32 = 0x46545F43 // "FT_C"

// Header is the 12-byte GIOP message header.
type Header struct {
	Major, Minor byte
	Order        cdr.ByteOrder
	Type         MsgType
	Size         uint32 // body size, excluding the header itself
}

// Message is a framed GIOP message: its header and raw body bytes. The
// body is CDR-encoded in Header.Order with alignment relative to the body
// start.
type Message struct {
	Header Header
	Body   []byte
}

// Request is a decoded GIOP 1.0 Request message body.
type Request struct {
	ServiceContexts  []ServiceContext
	RequestID        uint32
	ResponseExpected bool
	ObjectKey        []byte
	Operation        string
	Principal        []byte
	// Args holds the CDR-encoded in-parameters, still in the byte order
	// of the enclosing message.
	Args []byte
	// ArgsOrder records that byte order so Args can be re-decoded.
	ArgsOrder cdr.ByteOrder
}

// Reply is a decoded GIOP 1.0 Reply message body.
type Reply struct {
	ServiceContexts []ServiceContext
	RequestID       uint32
	Status          ReplyStatus
	// Result holds the CDR-encoded reply body (out-parameters, or the
	// exception, or the forwarding IOR).
	Result      []byte
	ResultOrder cdr.ByteOrder
}

// CancelRequest is a decoded CancelRequest body.
type CancelRequest struct {
	RequestID uint32
}

// LocateRequest is a decoded LocateRequest body.
type LocateRequest struct {
	RequestID uint32
	ObjectKey []byte
}

// LocateReply is a decoded LocateReply body.
type LocateReply struct {
	RequestID uint32
	Status    LocateStatus
}

// ContextByID returns the first service context with the given id, if any.
func ContextByID(list []ServiceContext, id uint32) ([]byte, bool) {
	for _, sc := range list {
		if sc.ID == id {
			return sc.Data, true
		}
	}
	return nil, false
}

// ReadMessage reads one framed GIOP message from r.
func ReadMessage(r io.Reader) (Message, error) {
	var hdr [HeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Message{}, err
	}
	h, err := parseHeader(hdr)
	if err != nil {
		return Message{}, err
	}
	body := make([]byte, h.Size)
	if _, err := io.ReadFull(r, body); err != nil {
		return Message{}, fmt.Errorf("giop: reading %v body: %w", h.Type, err)
	}
	return Message{Header: h, Body: body}, nil
}

// wireBufs pools frame-encode buffers so the framing writers emit each
// message with a single Write call and no per-message allocation.
var wireBufs = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

func putWireBuf(bp *[]byte) {
	// Oversized buffers (a large fragmented body passed through) are left
	// to the collector rather than pinned in the pool.
	if cap(*bp) > 1<<20 {
		return
	}
	*bp = (*bp)[:0]
	wireBufs.Put(bp)
}

// WriteMessage writes msg, setting the header size from the body length.
func WriteMessage(w io.Writer, msg Message) error {
	return writeWithFlags(w, msg, false)
}

// Marshal returns the full wire form (header + body) of msg.
func Marshal(msg Message) []byte {
	msg.Header.Size = uint32(len(msg.Body))
	out := appendHeader(make([]byte, 0, HeaderSize+len(msg.Body)), msg.Header)
	return append(out, msg.Body...)
}

// Unmarshal parses a full wire-form message (header + body) from b.
func Unmarshal(b []byte) (Message, error) {
	if len(b) < HeaderSize {
		return Message{}, fmt.Errorf("giop: %d bytes is shorter than a header", len(b))
	}
	var hdr [HeaderSize]byte
	copy(hdr[:], b)
	h, err := parseHeader(hdr)
	if err != nil {
		return Message{}, err
	}
	if len(b)-HeaderSize < int(h.Size) {
		return Message{}, fmt.Errorf("giop: header declares %d body bytes, have %d", h.Size, len(b)-HeaderSize)
	}
	return Message{Header: h, Body: b[HeaderSize : HeaderSize+int(h.Size)]}, nil
}

func parseHeader(hdr [HeaderSize]byte) (Header, error) {
	if [4]byte(hdr[:4]) != magic {
		return Header{}, ErrBadMagic
	}
	h := Header{
		Major: hdr[4],
		Minor: hdr[5],
		Order: cdr.ByteOrder(hdr[6] & 1),
		Type:  MsgType(hdr[7]),
	}
	if h.Major != 1 || h.Minor > 2 {
		return Header{}, fmt.Errorf("%w: %d.%d", ErrBadVersion, h.Major, h.Minor)
	}
	r := cdr.NewReader(hdr[8:12], h.Order)
	h.Size = r.ReadULong()
	if h.Size > MaxMessageSize {
		return Header{}, ErrTooLarge
	}
	return h, nil
}

// appendHeader appends the 12-byte wire header to dst, encoding the size
// field directly in the header's byte order (no intermediate writer).
func appendHeader(dst []byte, h Header) []byte {
	if h.Major == 0 {
		h.Major, h.Minor = 1, 0
	}
	dst = append(dst, magic[0], magic[1], magic[2], magic[3],
		h.Major, h.Minor, byte(h.Order), byte(h.Type))
	if h.Order == cdr.BigEndian {
		return append(dst, byte(h.Size>>24), byte(h.Size>>16), byte(h.Size>>8), byte(h.Size))
	}
	return append(dst, byte(h.Size), byte(h.Size>>8), byte(h.Size>>16), byte(h.Size>>24))
}

func encodeHeader(h Header) []byte {
	return appendHeader(make([]byte, 0, HeaderSize), h)
}
