package giop

import (
	"errors"
	"fmt"
	"io"
)

// GIOP fragmentation (versions 1.1 and 1.2): a message whose header has
// the "more fragments follow" flag set is continued by Fragment messages
// until one arrives with the flag clear. In 1.2 each fragment body
// begins with the request id of the message it continues; in 1.1 the
// fragment body is a bare continuation (so only one message may be in
// flight per direction). This file implements writing fragmented
// messages and a reassembling reader, which the ORB and the gateway use
// so large invocations cross the wire within bounded buffers.

// MsgFragment is the GIOP 1.1+ Fragment message type.
const MsgFragment MsgType = 7

// flagMoreFragments is bit 1 of the GIOP header flags octet.
const flagMoreFragments = 0x02

// Errors reported by the fragmentation layer.
var (
	ErrOrphanFragment   = errors.New("giop: fragment without a message to continue")
	ErrFragmentTooOld   = errors.New("giop: fragmented message incomplete at connection end")
	errFragmentProtocol = errors.New("giop: fragmentation requires GIOP 1.1 or later")
)

// DefaultFragmentSize is the body-size threshold above which
// WriteMessageFragmented splits a message.
const DefaultFragmentSize = 32 << 10

// WriteMessageFragmented writes msg, splitting bodies larger than
// fragSize (0 means DefaultFragmentSize) into an initial message plus
// Fragment continuations. Messages in GIOP 1.0, and messages whose type
// cannot be fragmented, are written whole regardless of size.
func WriteMessageFragmented(w io.Writer, msg Message, fragSize int) error {
	if fragSize <= 0 {
		fragSize = DefaultFragmentSize
	}
	canFragment := msg.Header.Minor >= 1 &&
		(msg.Header.Type == MsgRequest || msg.Header.Type == MsgReply)
	if !canFragment || len(msg.Body) <= fragSize {
		return WriteMessage(w, msg)
	}

	// For 1.2 every continuation carries the request id, which the
	// initial message's body begins with (both Request and Reply headers
	// start with it in 1.2 — and 1.1 requests start with the service
	// context list, so 1.1 continuations are bare).
	var reqID []byte
	if msg.Header.Minor == 2 {
		if len(msg.Body) < 4 {
			return fmt.Errorf("giop: fragment: body too short for a 1.2 header")
		}
		reqID = msg.Body[:4]
	}

	first := msg
	first.Body = msg.Body[:fragSize]
	if err := writeWithFlags(w, first, true); err != nil {
		return err
	}

	// One pooled buffer carries every continuation frame: header, request
	// id (1.2) and chunk are appended into it and written in one call, so
	// fragmenting a large body costs no per-fragment allocation.
	bp := wireBufs.Get().(*[]byte)
	defer putWireBuf(bp)
	fh := Header{
		Major: msg.Header.Major,
		Minor: msg.Header.Minor,
		Order: msg.Header.Order,
		Type:  MsgFragment,
	}
	rest := msg.Body[fragSize:]
	for len(rest) > 0 {
		n := len(rest)
		more := false
		if n > fragSize {
			n = fragSize
			more = true
		}
		fh.Size = uint32(len(reqID) + n)
		buf := appendHeader((*bp)[:0], fh)
		if more {
			buf[6] |= flagMoreFragments
		}
		buf = append(buf, reqID...)
		buf = append(buf, rest[:n]...)
		*bp = buf
		if _, err := w.Write(buf); err != nil {
			return err
		}
		rest = rest[n:]
	}
	return nil
}

// writeWithFlags writes one framed message with the more-fragments flag,
// as a single Write from a pooled buffer.
func writeWithFlags(w io.Writer, msg Message, more bool) error {
	if len(msg.Body) > MaxMessageSize {
		return ErrTooLarge
	}
	msg.Header.Size = uint32(len(msg.Body))
	bp := wireBufs.Get().(*[]byte)
	defer putWireBuf(bp)
	buf := appendHeader((*bp)[:0], msg.Header)
	if more {
		buf[6] |= flagMoreFragments
	}
	buf = append(buf, msg.Body...)
	*bp = buf
	_, err := w.Write(buf)
	return err
}

// Reassembler reads framed messages from a stream, transparently
// reassembling fragmented ones. It is not safe for concurrent use; wrap
// one around each connection's read side.
type Reassembler struct {
	r io.Reader
	// partial is the in-progress fragmented message, if any.
	partial  *Message
	pendID   []byte // 1.2: the request id continuations must match
	maxTotal int
}

// NewReassembler wraps r. maxTotal bounds a reassembled message's body
// (0 means MaxMessageSize).
func NewReassembler(r io.Reader, maxTotal int) *Reassembler {
	if maxTotal <= 0 || maxTotal > MaxMessageSize {
		maxTotal = MaxMessageSize
	}
	return &Reassembler{r: r, maxTotal: maxTotal}
}

// Next returns the next complete message.
func (ra *Reassembler) Next() (Message, error) {
	for {
		var hdr [HeaderSize]byte
		if _, err := io.ReadFull(ra.r, hdr[:]); err != nil {
			if ra.partial != nil && (errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF)) {
				return Message{}, ErrFragmentTooOld
			}
			return Message{}, err
		}
		h, err := parseHeader(hdr)
		if err != nil {
			return Message{}, err
		}
		more := hdr[6]&flagMoreFragments != 0
		body := make([]byte, h.Size)
		if _, err := io.ReadFull(ra.r, body); err != nil {
			if ra.partial != nil && (errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF)) {
				return Message{}, ErrFragmentTooOld
			}
			return Message{}, fmt.Errorf("giop: reading %v body: %w", h.Type, err)
		}

		switch {
		case h.Type == MsgFragment:
			if ra.partial == nil {
				return Message{}, ErrOrphanFragment
			}
			if ra.partial.Header.Minor == 2 {
				// Strip and verify the continuation's request id.
				if len(body) < 4 {
					return Message{}, fmt.Errorf("giop: 1.2 fragment shorter than its request id")
				}
				if string(body[:4]) != string(ra.pendID) {
					return Message{}, fmt.Errorf("giop: interleaved fragment for a different request")
				}
				body = body[4:]
			}
			if len(ra.partial.Body)+len(body) > ra.maxTotal {
				return Message{}, ErrTooLarge
			}
			ra.partial.Body = append(ra.partial.Body, body...)
			if more {
				continue
			}
			msg := *ra.partial
			ra.partial = nil
			ra.pendID = nil
			return msg, nil

		case more:
			if h.Minor < 1 {
				return Message{}, errFragmentProtocol
			}
			if ra.partial != nil {
				return Message{}, fmt.Errorf("giop: new fragmented message before the previous completed")
			}
			msg := Message{Header: h, Body: body}
			ra.partial = &msg
			if h.Minor == 2 {
				if len(body) < 4 {
					return Message{}, fmt.Errorf("giop: fragmented 1.2 message shorter than its request id")
				}
				ra.pendID = append([]byte(nil), body[:4]...)
			}
			continue

		default:
			return Message{Header: h, Body: body}, nil
		}
	}
}
