package giop

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"testing/quick"

	"eternalgw/internal/cdr"
)

func big12Request(t *testing.T, size int) Message {
	t.Helper()
	w := cdr.NewWriter(cdr.BigEndian)
	w.WriteOctetSeq(bytes.Repeat([]byte{0xAB}, size))
	msg, err := EncodeRequestV(cdr.BigEndian, 2, Request{
		RequestID:        77,
		ResponseExpected: true,
		ObjectKey:        []byte("big/object"),
		Operation:        "upload",
		Args:             w.Bytes(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return msg
}

func TestFragmentedRequestRoundTrip(t *testing.T) {
	msg := big12Request(t, 10_000)
	var buf bytes.Buffer
	if err := WriteMessageFragmented(&buf, msg, 1024); err != nil {
		t.Fatal(err)
	}
	// The stream holds multiple frames, not one.
	if buf.Len() <= len(msg.Body)+HeaderSize {
		t.Fatalf("stream length %d suggests no fragmentation", buf.Len())
	}
	ra := NewReassembler(&buf, 0)
	got, err := ra.Next()
	if err != nil {
		t.Fatal(err)
	}
	if got.Header.Type != MsgRequest || !bytes.Equal(got.Body, msg.Body) {
		t.Fatalf("reassembled message differs: %d vs %d bytes", len(got.Body), len(msg.Body))
	}
	req, err := DecodeRequest(got)
	if err != nil {
		t.Fatal(err)
	}
	if req.RequestID != 77 || req.Operation != "upload" {
		t.Fatalf("req = %+v", req)
	}
	if _, err := ra.Next(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestSmallMessagesPassThroughUnfragmented(t *testing.T) {
	msg := big12Request(t, 16)
	var buf bytes.Buffer
	if err := WriteMessageFragmented(&buf, msg, 1024); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != HeaderSize+len(msg.Body) {
		t.Fatalf("small message was fragmented: %d bytes", buf.Len())
	}
	ra := NewReassembler(&buf, 0)
	got, err := ra.Next()
	if err != nil || !bytes.Equal(got.Body, msg.Body) {
		t.Fatalf("round trip failed: %v", err)
	}
}

func TestGIOP10NeverFragments(t *testing.T) {
	req := Request{RequestID: 1, Operation: "op", ObjectKey: []byte("k"), Args: bytes.Repeat([]byte{1}, 8192)}
	msg, err := EncodeRequest(cdr.BigEndian, req)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteMessageFragmented(&buf, msg, 1024); err != nil {
		t.Fatal(err)
	}
	// One frame: header + full body.
	if buf.Len() != HeaderSize+len(msg.Body) {
		t.Fatalf("1.0 message was fragmented")
	}
}

func TestReassemblerInterleavedMessagesBetweenReads(t *testing.T) {
	// A complete unfragmented message following a fragmented one.
	big := big12Request(t, 5000)
	small := EncodeCancelRequest(cdr.BigEndian, CancelRequest{RequestID: 5})
	small.Header.Minor = 2
	var buf bytes.Buffer
	if err := WriteMessageFragmented(&buf, big, 512); err != nil {
		t.Fatal(err)
	}
	if err := WriteMessage(&buf, small); err != nil {
		t.Fatal(err)
	}
	ra := NewReassembler(&buf, 0)
	first, err := ra.Next()
	if err != nil || first.Header.Type != MsgRequest {
		t.Fatalf("first = %+v, %v", first.Header, err)
	}
	second, err := ra.Next()
	if err != nil || second.Header.Type != MsgCancelRequest {
		t.Fatalf("second = %+v, %v", second.Header, err)
	}
}

func TestOrphanFragmentRejected(t *testing.T) {
	frag := Message{Header: Header{Major: 1, Minor: 2, Order: cdr.BigEndian, Type: MsgFragment}, Body: []byte{0, 0, 0, 1, 9}}
	var buf bytes.Buffer
	if err := WriteMessage(&buf, frag); err != nil {
		t.Fatal(err)
	}
	ra := NewReassembler(&buf, 0)
	if _, err := ra.Next(); !errors.Is(err, ErrOrphanFragment) {
		t.Fatalf("err = %v, want ErrOrphanFragment", err)
	}
}

func TestTruncatedFragmentStreamReported(t *testing.T) {
	msg := big12Request(t, 5000)
	var buf bytes.Buffer
	if err := WriteMessageFragmented(&buf, msg, 512); err != nil {
		t.Fatal(err)
	}
	// Drop the final fragment frame.
	stream := buf.Bytes()
	truncated := stream[:len(stream)-(HeaderSize+512+4)]
	ra := NewReassembler(bytes.NewReader(truncated), 0)
	_, err := ra.Next()
	if !errors.Is(err, ErrFragmentTooOld) {
		t.Fatalf("err = %v, want ErrFragmentTooOld", err)
	}
}

func TestReassemblyBoundEnforced(t *testing.T) {
	msg := big12Request(t, 100_000)
	var buf bytes.Buffer
	if err := WriteMessageFragmented(&buf, msg, 4096); err != nil {
		t.Fatal(err)
	}
	ra := NewReassembler(&buf, 16<<10)
	if _, err := ra.Next(); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestQuickFragmentRoundTrip(t *testing.T) {
	f := func(payload []byte, fragExp uint8) bool {
		fragSize := 64 << (fragExp % 6) // 64..2048
		w := cdr.NewWriter(cdr.BigEndian)
		w.WriteOctetSeq(payload)
		msg, err := EncodeRequestV(cdr.BigEndian, 2, Request{
			RequestID: 9,
			ObjectKey: []byte("k"),
			Operation: "op",
			Args:      w.Bytes(),
		})
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := WriteMessageFragmented(&buf, msg, fragSize); err != nil {
			return false
		}
		got, err := NewReassembler(&buf, 0).Next()
		if err != nil {
			return false
		}
		return bytes.Equal(got.Body, msg.Body)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
