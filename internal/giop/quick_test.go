package giop

import (
	"bytes"
	"testing"
	"testing/quick"

	"eternalgw/internal/cdr"
)

// TestQuickRequestRoundTrip property: arbitrary requests survive
// encode/decode in either byte order.
func TestQuickRequestRoundTrip(t *testing.T) {
	f := func(id uint32, expected bool, key, principal, args []byte, op string, little bool) bool {
		order := cdr.BigEndian
		if little {
			order = cdr.LittleEndian
		}
		// CDR strings cannot carry NUL bytes; strip them.
		op = sanitize(op)
		msg, err := EncodeRequest(order, Request{
			RequestID:        id,
			ResponseExpected: expected,
			ObjectKey:        key,
			Operation:        op,
			Principal:        principal,
			Args:             args,
		})
		if err != nil {
			return false
		}
		got, err := DecodeRequest(msg)
		if err != nil {
			return false
		}
		return got.RequestID == id &&
			got.ResponseExpected == expected &&
			bytes.Equal(got.ObjectKey, key) &&
			got.Operation == op &&
			bytes.Equal(got.Principal, principal) &&
			bytes.Equal(got.Args, args)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickReplyRoundTrip property: arbitrary replies survive
// encode/decode.
func TestQuickReplyRoundTrip(t *testing.T) {
	f := func(id uint32, status uint8, result []byte, little bool) bool {
		order := cdr.BigEndian
		if little {
			order = cdr.LittleEndian
		}
		rep := Reply{RequestID: id, Status: ReplyStatus(status % 4), Result: result}
		msg, err := EncodeReply(order, rep)
		if err != nil {
			return false
		}
		got, err := DecodeReply(msg)
		if err != nil {
			return false
		}
		return got.RequestID == id && got.Status == rep.Status && bytes.Equal(got.Result, result)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickUnmarshalNeverPanics property: arbitrary bytes never panic the
// framing or body decoders.
func TestQuickUnmarshalNeverPanics(t *testing.T) {
	f := func(data []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		msg, err := Unmarshal(data)
		if err != nil {
			return true
		}
		// Feed whatever parsed into each body decoder; errors are fine,
		// panics are not.
		_, _ = DecodeRequest(msg)
		_, _ = DecodeReply(msg)
		_, _ = DecodeCancelRequest(msg)
		_, _ = DecodeLocateRequest(msg)
		_, _ = DecodeLocateReply(msg)
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMarshalUnmarshalIdentity property: Marshal followed by
// Unmarshal is the identity on framed messages.
func TestQuickMarshalUnmarshalIdentity(t *testing.T) {
	f := func(body []byte, typ uint8, little bool) bool {
		order := cdr.BigEndian
		if little {
			order = cdr.LittleEndian
		}
		msg := Message{
			Header: Header{Major: 1, Minor: 0, Order: order, Type: MsgType(typ % 7)},
			Body:   body,
		}
		got, err := Unmarshal(Marshal(msg))
		if err != nil {
			return false
		}
		return got.Header.Type == msg.Header.Type &&
			got.Header.Order == order &&
			bytes.Equal(got.Body, body)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		if r != 0 {
			out = append(out, r)
		}
	}
	return string(out)
}
