package giop

import (
	"fmt"

	"eternalgw/internal/cdr"
)

// EncodeRequest builds a framed Request message in the given byte order.
// args must already be CDR-encoded in the same byte order (alignment
// within args is handled by appending it directly after the header
// fields, so args should be produced via a body writer obtained from
// the request encoder when strict alignment of the first argument
// matters; primitive echo payloads used throughout this repository are
// octet sequences, which carry their own alignment).
func EncodeRequest(order cdr.ByteOrder, req Request) (Message, error) {
	w := cdr.NewWriterCap(order, requestSizeHint(req))
	writeServiceContexts(w, req.ServiceContexts)
	w.WriteULong(req.RequestID)
	w.WriteBool(req.ResponseExpected)
	w.WriteOctetSeq(req.ObjectKey)
	w.WriteString(req.Operation)
	w.WriteOctetSeq(req.Principal)
	// Body arguments follow the header; they were encoded relative to a
	// fresh stream, so realign to 8 to give them a deterministic base
	// that matches what the encoder of Args assumed.
	w.Align(8)
	w.WriteOctets(req.Args)
	if err := w.Err(); err != nil {
		return Message{}, fmt.Errorf("giop: encode request: %w", err)
	}
	return Message{
		Header: Header{Major: 1, Minor: 0, Order: order, Type: MsgRequest},
		Body:   w.Bytes(),
	}, nil
}

// DecodeRequest parses a Request message body.
func DecodeRequest(msg Message) (Request, error) {
	if msg.Header.Type != MsgRequest {
		return Request{}, fmt.Errorf("giop: decode request: message is %v", msg.Header.Type)
	}
	switch msg.Header.Minor {
	case 1:
		return decodeRequest11(msg)
	case 2:
		return decodeRequest12(msg)
	}
	r := cdr.NewReader(msg.Body, msg.Header.Order)
	var req Request
	req.ServiceContexts = readServiceContexts(r)
	req.RequestID = r.ReadULong()
	req.ResponseExpected = r.ReadBool()
	req.ObjectKey = cloneBytes(r.ReadOctetSeq())
	req.Operation = r.ReadString()
	req.Principal = cloneBytes(r.ReadOctetSeq())
	r.Align(8)
	if err := r.Err(); err != nil {
		return Request{}, fmt.Errorf("giop: decode request: %w", err)
	}
	req.Args = cloneBytes(r.ReadOctets(r.Remaining()))
	req.ArgsOrder = msg.Header.Order
	return req, nil
}

// requestSizeHint bounds a request body's encoded size, so encoders can
// preallocate their buffer instead of growing it through the default
// 64-byte writer (fixed fields and alignment slack stay under the
// 64-byte allowance).
func requestSizeHint(req Request) int {
	size := 64 + len(req.ObjectKey) + len(req.Operation) + len(req.Principal) + len(req.Args)
	for _, sc := range req.ServiceContexts {
		size += 16 + len(sc.Data)
	}
	return size
}

// replySizeHint is requestSizeHint for replies.
func replySizeHint(rep Reply) int {
	size := 32 + len(rep.Result)
	for _, sc := range rep.ServiceContexts {
		size += 16 + len(sc.Data)
	}
	return size
}

// EncodeReply builds a framed Reply message in the given byte order.
func EncodeReply(order cdr.ByteOrder, rep Reply) (Message, error) {
	w := cdr.NewWriterCap(order, replySizeHint(rep))
	writeServiceContexts(w, rep.ServiceContexts)
	w.WriteULong(rep.RequestID)
	w.WriteULong(uint32(rep.Status))
	w.Align(8)
	w.WriteOctets(rep.Result)
	if err := w.Err(); err != nil {
		return Message{}, fmt.Errorf("giop: encode reply: %w", err)
	}
	return Message{
		Header: Header{Major: 1, Minor: 0, Order: order, Type: MsgReply},
		Body:   w.Bytes(),
	}, nil
}

// DecodeReply parses a Reply message body.
func DecodeReply(msg Message) (Reply, error) {
	if msg.Header.Type != MsgReply {
		return Reply{}, fmt.Errorf("giop: decode reply: message is %v", msg.Header.Type)
	}
	if msg.Header.Minor == 2 {
		return decodeReply12(msg)
	}
	r := cdr.NewReader(msg.Body, msg.Header.Order)
	var rep Reply
	rep.ServiceContexts = readServiceContexts(r)
	rep.RequestID = r.ReadULong()
	rep.Status = ReplyStatus(r.ReadULong())
	r.Align(8)
	if err := r.Err(); err != nil {
		return Reply{}, fmt.Errorf("giop: decode reply: %w", err)
	}
	rep.Result = cloneBytes(r.ReadOctets(r.Remaining()))
	rep.ResultOrder = msg.Header.Order
	return rep, nil
}

// EncodeCancelRequest builds a framed CancelRequest message.
func EncodeCancelRequest(order cdr.ByteOrder, c CancelRequest) Message {
	w := cdr.NewWriter(order)
	w.WriteULong(c.RequestID)
	return Message{
		Header: Header{Major: 1, Minor: 0, Order: order, Type: MsgCancelRequest},
		Body:   w.Bytes(),
	}
}

// DecodeCancelRequest parses a CancelRequest message body.
func DecodeCancelRequest(msg Message) (CancelRequest, error) {
	r := cdr.NewReader(msg.Body, msg.Header.Order)
	c := CancelRequest{RequestID: r.ReadULong()}
	if err := r.Err(); err != nil {
		return CancelRequest{}, fmt.Errorf("giop: decode cancel: %w", err)
	}
	return c, nil
}

// EncodeLocateRequest builds a framed LocateRequest message.
func EncodeLocateRequest(order cdr.ByteOrder, lr LocateRequest) Message {
	w := cdr.NewWriter(order)
	w.WriteULong(lr.RequestID)
	w.WriteOctetSeq(lr.ObjectKey)
	return Message{
		Header: Header{Major: 1, Minor: 0, Order: order, Type: MsgLocateRequest},
		Body:   w.Bytes(),
	}
}

// DecodeLocateRequest parses a LocateRequest message body.
func DecodeLocateRequest(msg Message) (LocateRequest, error) {
	r := cdr.NewReader(msg.Body, msg.Header.Order)
	lr := LocateRequest{RequestID: r.ReadULong(), ObjectKey: cloneBytes(r.ReadOctetSeq())}
	if err := r.Err(); err != nil {
		return LocateRequest{}, fmt.Errorf("giop: decode locate request: %w", err)
	}
	return lr, nil
}

// EncodeLocateReply builds a framed LocateReply message.
func EncodeLocateReply(order cdr.ByteOrder, lr LocateReply) Message {
	w := cdr.NewWriter(order)
	w.WriteULong(lr.RequestID)
	w.WriteULong(uint32(lr.Status))
	return Message{
		Header: Header{Major: 1, Minor: 0, Order: order, Type: MsgLocateReply},
		Body:   w.Bytes(),
	}
}

// DecodeLocateReply parses a LocateReply message body.
func DecodeLocateReply(msg Message) (LocateReply, error) {
	r := cdr.NewReader(msg.Body, msg.Header.Order)
	lr := LocateReply{RequestID: r.ReadULong(), Status: LocateStatus(r.ReadULong())}
	if err := r.Err(); err != nil {
		return LocateReply{}, fmt.Errorf("giop: decode locate reply: %w", err)
	}
	return lr, nil
}

// EncodeCloseConnection builds a framed CloseConnection message.
func EncodeCloseConnection(order cdr.ByteOrder) Message {
	return Message{Header: Header{Major: 1, Minor: 0, Order: order, Type: MsgCloseConn}}
}

// EncodeMessageError builds a framed MessageError message.
func EncodeMessageError(order cdr.ByteOrder) Message {
	return Message{Header: Header{Major: 1, Minor: 0, Order: order, Type: MsgError}}
}

// SystemExceptionBody encodes the standard system-exception reply body:
// repository id, minor code, completion status.
func SystemExceptionBody(order cdr.ByteOrder, repoID string, minor, completed uint32) []byte {
	w := cdr.NewWriter(order)
	w.WriteString(repoID)
	w.WriteULong(minor)
	w.WriteULong(completed)
	return w.Bytes()
}

// DecodeSystemException parses a system-exception reply body.
func DecodeSystemException(body []byte, order cdr.ByteOrder) (repoID string, minor, completed uint32, err error) {
	r := cdr.NewReader(body, order)
	repoID = r.ReadString()
	minor = r.ReadULong()
	completed = r.ReadULong()
	if err := r.Err(); err != nil {
		return "", 0, 0, fmt.Errorf("giop: decode system exception: %w", err)
	}
	return repoID, minor, completed, nil
}

func writeServiceContexts(w *cdr.Writer, list []ServiceContext) {
	w.WriteULong(uint32(len(list)))
	for _, sc := range list {
		w.WriteULong(sc.ID)
		w.WriteOctetSeq(sc.Data)
	}
}

func readServiceContexts(r *cdr.Reader) []ServiceContext {
	n := r.ReadULong()
	if r.Err() != nil {
		return nil
	}
	// Each entry is at least 8 bytes, so cap the allocation hint by what
	// the remaining bytes could possibly hold; truncation then surfaces
	// through the reader's sticky error as entries are decoded.
	capHint := int(n)
	if maxEntries := r.Remaining() / 8; capHint > maxEntries {
		capHint = maxEntries
	}
	list := make([]ServiceContext, 0, capHint)
	for i := uint32(0); i < n && r.Err() == nil; i++ {
		id := r.ReadULong()
		data := cloneBytes(r.ReadOctetSeq())
		list = append(list, ServiceContext{ID: id, Data: data})
	}
	return list
}

// cloneBytes copies b so decoded messages do not alias network buffers.
func cloneBytes(b []byte) []byte {
	if len(b) == 0 {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}
