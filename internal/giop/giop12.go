package giop

import (
	"errors"
	"fmt"

	"eternalgw/internal/cdr"
)

// GIOP 1.2 message support. Version 1.2 (CORBA 2.3+) changes the Request
// and Reply headers: requests carry a response_flags octet and a
// TargetAddress union instead of the 1.0 boolean and raw object key, and
// both bodies are aligned to an 8-octet boundary. This package
// implements the KeyAddr target discriminant, which is what IIOP clients
// use when addressing by object key — the only form a gateway needs to
// resolve a target group (paper section 3.1).

// Target addressing dispositions (GIOP 1.2 TargetAddress union).
const (
	// TargetKeyAddr addresses the object by its object key.
	TargetKeyAddr uint16 = 0
	// TargetProfileAddr addresses by a full tagged profile.
	TargetProfileAddr uint16 = 1
	// TargetReferenceAddr addresses by a full IOR plus profile index.
	TargetReferenceAddr uint16 = 2
)

// Response flag values for GIOP 1.2 requests.
const (
	// responseFlagsNone requests no response (oneway).
	responseFlagsNone byte = 0x00
	// responseFlagsExpected requests a full response.
	responseFlagsExpected byte = 0x03
)

// ErrUnsupportedTarget reports a TargetAddress disposition other than
// KeyAddr; gateways resolve object groups by key, so profile and
// reference addressing would require IOR introspection the caller should
// perform instead.
var ErrUnsupportedTarget = errors.New("giop: unsupported GIOP 1.2 target addressing disposition")

// EncodeRequestV builds a framed Request in the given GIOP minor
// version (0, 1 or 2). Minor versions 0 and 1 share the 1.0 header
// layout.
func EncodeRequestV(order cdr.ByteOrder, minor byte, req Request) (Message, error) {
	switch minor {
	case 0:
		return EncodeRequest(order, req)
	case 1:
		return encodeRequest11(order, req)
	case 2:
		return encodeRequest12(order, req)
	default:
		return Message{}, fmt.Errorf("%w: 1.%d", ErrBadVersion, minor)
	}
}

// encodeRequest11 builds a GIOP 1.1 Request: the 1.0 layout plus three
// reserved octets between response_expected and the object key.
func encodeRequest11(order cdr.ByteOrder, req Request) (Message, error) {
	w := cdr.NewWriterCap(order, requestSizeHint(req))
	writeServiceContexts(w, req.ServiceContexts)
	w.WriteULong(req.RequestID)
	w.WriteBool(req.ResponseExpected)
	w.WriteOctet(0) // reserved
	w.WriteOctet(0)
	w.WriteOctet(0)
	w.WriteOctetSeq(req.ObjectKey)
	w.WriteString(req.Operation)
	w.WriteOctetSeq(req.Principal)
	w.Align(8)
	w.WriteOctets(req.Args)
	if err := w.Err(); err != nil {
		return Message{}, fmt.Errorf("giop: encode 1.1 request: %w", err)
	}
	return Message{
		Header: Header{Major: 1, Minor: 1, Order: order, Type: MsgRequest},
		Body:   w.Bytes(),
	}, nil
}

func decodeRequest11(msg Message) (Request, error) {
	r := cdr.NewReader(msg.Body, msg.Header.Order)
	var req Request
	req.ServiceContexts = readServiceContexts(r)
	req.RequestID = r.ReadULong()
	req.ResponseExpected = r.ReadBool()
	r.ReadOctet() // reserved
	r.ReadOctet()
	r.ReadOctet()
	req.ObjectKey = cloneRequestBytes(r.ReadOctetSeq())
	req.Operation = r.ReadString()
	req.Principal = cloneRequestBytes(r.ReadOctetSeq())
	r.Align(8)
	if err := r.Err(); err != nil {
		return Request{}, fmt.Errorf("giop: decode 1.1 request: %w", err)
	}
	req.Args = cloneRequestBytes(r.ReadOctets(r.Remaining()))
	req.ArgsOrder = msg.Header.Order
	return req, nil
}

// cloneRequestBytes copies decoded slices out of network buffers.
func cloneRequestBytes(b []byte) []byte {
	if len(b) == 0 {
		return nil
	}
	out := make([]byte, len(b))
	copy(out, b)
	return out
}

func encodeRequest12(order cdr.ByteOrder, req Request) (Message, error) {
	w := cdr.NewWriterCap(order, requestSizeHint(req))
	w.WriteULong(req.RequestID)
	flags := responseFlagsNone
	if req.ResponseExpected {
		flags = responseFlagsExpected
	}
	w.WriteOctet(flags)
	w.WriteOctet(0) // reserved
	w.WriteOctet(0)
	w.WriteOctet(0)
	w.WriteUShort(TargetKeyAddr)
	w.WriteOctetSeq(req.ObjectKey)
	w.WriteString(req.Operation)
	writeServiceContexts(w, req.ServiceContexts)
	if len(req.Args) > 0 {
		// GIOP 1.2: a non-empty body starts at an 8-octet boundary.
		w.Align(8)
		w.WriteOctets(req.Args)
	}
	if err := w.Err(); err != nil {
		return Message{}, fmt.Errorf("giop: encode 1.2 request: %w", err)
	}
	return Message{
		Header: Header{Major: 1, Minor: 2, Order: order, Type: MsgRequest},
		Body:   w.Bytes(),
	}, nil
}

func decodeRequest12(msg Message) (Request, error) {
	r := cdr.NewReader(msg.Body, msg.Header.Order)
	var req Request
	req.RequestID = r.ReadULong()
	flags := r.ReadOctet()
	req.ResponseExpected = flags&0x01 != 0
	r.ReadOctet() // reserved
	r.ReadOctet()
	r.ReadOctet()
	disposition := r.ReadUShort()
	if r.Err() == nil && disposition != TargetKeyAddr {
		return Request{}, fmt.Errorf("%w: %d", ErrUnsupportedTarget, disposition)
	}
	req.ObjectKey = cloneBytes(r.ReadOctetSeq())
	req.Operation = r.ReadString()
	req.ServiceContexts = readServiceContexts(r)
	if err := r.Err(); err != nil {
		return Request{}, fmt.Errorf("giop: decode 1.2 request: %w", err)
	}
	if r.Remaining() > 0 {
		r.Align(8)
		req.Args = cloneBytes(r.ReadOctets(r.Remaining()))
	}
	req.ArgsOrder = msg.Header.Order
	return req, nil
}

// EncodeReplyV builds a framed Reply in the given GIOP minor version.
func EncodeReplyV(order cdr.ByteOrder, minor byte, rep Reply) (Message, error) {
	switch minor {
	case 0, 1:
		msg, err := EncodeReply(order, rep)
		if err != nil {
			return Message{}, err
		}
		msg.Header.Minor = minor
		return msg, nil
	case 2:
		return encodeReply12(order, rep)
	default:
		return Message{}, fmt.Errorf("%w: 1.%d", ErrBadVersion, minor)
	}
}

func encodeReply12(order cdr.ByteOrder, rep Reply) (Message, error) {
	w := cdr.NewWriterCap(order, replySizeHint(rep))
	w.WriteULong(rep.RequestID)
	w.WriteULong(uint32(rep.Status))
	writeServiceContexts(w, rep.ServiceContexts)
	if len(rep.Result) > 0 {
		w.Align(8)
		w.WriteOctets(rep.Result)
	}
	if err := w.Err(); err != nil {
		return Message{}, fmt.Errorf("giop: encode 1.2 reply: %w", err)
	}
	return Message{
		Header: Header{Major: 1, Minor: 2, Order: order, Type: MsgReply},
		Body:   w.Bytes(),
	}, nil
}

func decodeReply12(msg Message) (Reply, error) {
	r := cdr.NewReader(msg.Body, msg.Header.Order)
	var rep Reply
	rep.RequestID = r.ReadULong()
	rep.Status = ReplyStatus(r.ReadULong())
	rep.ServiceContexts = readServiceContexts(r)
	if err := r.Err(); err != nil {
		return Reply{}, fmt.Errorf("giop: decode 1.2 reply: %w", err)
	}
	if r.Remaining() > 0 {
		r.Align(8)
		rep.Result = cloneBytes(r.ReadOctets(r.Remaining()))
	}
	rep.ResultOrder = msg.Header.Order
	return rep, nil
}
