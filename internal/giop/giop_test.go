package giop

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"eternalgw/internal/cdr"
)

func TestHeaderRoundTrip(t *testing.T) {
	for _, order := range []cdr.ByteOrder{cdr.BigEndian, cdr.LittleEndian} {
		h := Header{Major: 1, Minor: 0, Order: order, Type: MsgReply, Size: 1234}
		enc := encodeHeader(h)
		if len(enc) != HeaderSize {
			t.Fatalf("header size %d", len(enc))
		}
		got, err := parseHeader([12]byte(enc))
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		if got != h {
			t.Errorf("round trip %+v != %+v", got, h)
		}
	}
}

func TestParseHeaderRejectsBadMagic(t *testing.T) {
	var hdr [12]byte
	copy(hdr[:], "JUNK")
	if _, err := parseHeader(hdr); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestParseHeaderRejectsBadVersion(t *testing.T) {
	var hdr [12]byte
	copy(hdr[:], "GIOP")
	hdr[4], hdr[5] = 2, 0
	if _, err := parseHeader(hdr); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("err = %v, want ErrBadVersion", err)
	}
}

func TestParseHeaderRejectsHugeSize(t *testing.T) {
	var hdr [12]byte
	copy(hdr[:], "GIOP")
	hdr[4], hdr[5] = 1, 0
	hdr[8], hdr[9], hdr[10], hdr[11] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, err := parseHeader(hdr); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestRequestRoundTrip(t *testing.T) {
	args := cdr.NewWriter(cdr.BigEndian)
	args.WriteString("buy")
	args.WriteULong(100)

	req := Request{
		ServiceContexts: []ServiceContext{
			{ID: FTClientContextID, Data: []byte("client-7")},
			{ID: 1, Data: []byte{9, 9}},
		},
		RequestID:        42,
		ResponseExpected: true,
		ObjectKey:        []byte("trading/GOOG"),
		Operation:        "buy_shares",
		Principal:        []byte("nobody"),
		Args:             args.Bytes(),
	}
	msg, err := EncodeRequest(cdr.BigEndian, req)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeRequest(msg)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.RequestID != 42 || !got.ResponseExpected {
		t.Errorf("id/expected = %d/%v", got.RequestID, got.ResponseExpected)
	}
	if string(got.ObjectKey) != "trading/GOOG" {
		t.Errorf("object key = %q", got.ObjectKey)
	}
	if got.Operation != "buy_shares" {
		t.Errorf("operation = %q", got.Operation)
	}
	if string(got.Principal) != "nobody" {
		t.Errorf("principal = %q", got.Principal)
	}
	if len(got.ServiceContexts) != 2 {
		t.Fatalf("contexts = %d", len(got.ServiceContexts))
	}
	if data, ok := ContextByID(got.ServiceContexts, FTClientContextID); !ok || string(data) != "client-7" {
		t.Errorf("FT context = %q, %v", data, ok)
	}
	ar := cdr.NewReader(got.Args, got.ArgsOrder)
	if s := ar.ReadString(); s != "buy" {
		t.Errorf("arg string = %q", s)
	}
	if n := ar.ReadULong(); n != 100 {
		t.Errorf("arg ulong = %d", n)
	}
	if ar.Err() != nil {
		t.Fatalf("arg decode: %v", ar.Err())
	}
}

func TestRequestRoundTripLittleEndian(t *testing.T) {
	req := Request{RequestID: 7, ResponseExpected: false, ObjectKey: []byte{1}, Operation: "ping"}
	msg, err := EncodeRequest(cdr.LittleEndian, req)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeRequest(msg)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.RequestID != 7 || got.ResponseExpected || got.Operation != "ping" {
		t.Errorf("got %+v", got)
	}
}

func TestReplyRoundTrip(t *testing.T) {
	res := cdr.NewWriter(cdr.BigEndian)
	res.WriteDouble(99.5)
	rep := Reply{
		RequestID: 42,
		Status:    ReplyNoException,
		Result:    res.Bytes(),
	}
	msg, err := EncodeReply(cdr.BigEndian, rep)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeReply(msg)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.RequestID != 42 || got.Status != ReplyNoException {
		t.Errorf("got %+v", got)
	}
	rr := cdr.NewReader(got.Result, got.ResultOrder)
	if v := rr.ReadDouble(); v != 99.5 || rr.Err() != nil {
		t.Errorf("result = %v, err %v", v, rr.Err())
	}
}

func TestSystemExceptionRoundTrip(t *testing.T) {
	body := SystemExceptionBody(cdr.BigEndian, "IDL:omg.org/CORBA/OBJECT_NOT_EXIST:1.0", 1, 0)
	rep := Reply{RequestID: 9, Status: ReplySystemException, Result: body}
	msg, err := EncodeReply(cdr.BigEndian, rep)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeReply(msg)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	id, minor, completed, err := DecodeSystemException(got.Result, got.ResultOrder)
	if err != nil {
		t.Fatalf("decode exception: %v", err)
	}
	if id != "IDL:omg.org/CORBA/OBJECT_NOT_EXIST:1.0" || minor != 1 || completed != 0 {
		t.Errorf("got %q %d %d", id, minor, completed)
	}
}

func TestCancelAndLocateRoundTrips(t *testing.T) {
	c, err := DecodeCancelRequest(EncodeCancelRequest(cdr.BigEndian, CancelRequest{RequestID: 5}))
	if err != nil || c.RequestID != 5 {
		t.Errorf("cancel: %+v, %v", c, err)
	}
	lr, err := DecodeLocateRequest(EncodeLocateRequest(cdr.LittleEndian, LocateRequest{RequestID: 6, ObjectKey: []byte("k")}))
	if err != nil || lr.RequestID != 6 || string(lr.ObjectKey) != "k" {
		t.Errorf("locate request: %+v, %v", lr, err)
	}
	lp, err := DecodeLocateReply(EncodeLocateReply(cdr.BigEndian, LocateReply{RequestID: 6, Status: LocateObjectHere}))
	if err != nil || lp.Status != LocateObjectHere {
		t.Errorf("locate reply: %+v, %v", lp, err)
	}
}

func TestReadWriteMessageStream(t *testing.T) {
	var buf bytes.Buffer
	req := Request{RequestID: 1, Operation: "op", ObjectKey: []byte("x"), ResponseExpected: true}
	msg, err := EncodeRequest(cdr.BigEndian, req)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if err := WriteMessage(&buf, msg); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := WriteMessage(&buf, EncodeCloseConnection(cdr.BigEndian)); err != nil {
		t.Fatalf("write close: %v", err)
	}

	got, err := ReadMessage(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if got.Header.Type != MsgRequest {
		t.Errorf("type = %v", got.Header.Type)
	}
	dec, err := DecodeRequest(got)
	if err != nil || dec.Operation != "op" {
		t.Errorf("decode: %+v, %v", dec, err)
	}
	got, err = ReadMessage(&buf)
	if err != nil || got.Header.Type != MsgCloseConn {
		t.Errorf("close: %+v, %v", got.Header, err)
	}
	if _, err := ReadMessage(&buf); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestReadMessageTruncatedBody(t *testing.T) {
	msg, err := EncodeRequest(cdr.BigEndian, Request{RequestID: 1, Operation: "op"})
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	wire := Marshal(msg)
	_, err = ReadMessage(bytes.NewReader(wire[:len(wire)-3]))
	if err == nil {
		t.Fatal("expected error for truncated body")
	}
}

func TestMarshalUnmarshal(t *testing.T) {
	msg := EncodeCancelRequest(cdr.LittleEndian, CancelRequest{RequestID: 77})
	wire := Marshal(msg)
	got, err := Unmarshal(wire)
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	c, err := DecodeCancelRequest(got)
	if err != nil || c.RequestID != 77 {
		t.Errorf("cancel = %+v, %v", c, err)
	}
}

func TestUnmarshalShortBuffer(t *testing.T) {
	if _, err := Unmarshal([]byte("GIO")); err == nil {
		t.Fatal("expected error")
	}
}

func TestDecodeRequestWrongType(t *testing.T) {
	msg := EncodeCloseConnection(cdr.BigEndian)
	if _, err := DecodeRequest(msg); err == nil {
		t.Fatal("expected type mismatch error")
	}
	if _, err := DecodeReply(msg); err == nil {
		t.Fatal("expected type mismatch error")
	}
}

func TestServiceContextTruncationFailsCleanly(t *testing.T) {
	// Declare 100 service contexts but provide none.
	w := cdr.NewWriter(cdr.BigEndian)
	w.WriteULong(100)
	msg := Message{Header: Header{Major: 1, Minor: 0, Order: cdr.BigEndian, Type: MsgRequest}, Body: w.Bytes()}
	if _, err := DecodeRequest(msg); err == nil {
		t.Fatal("expected truncation error")
	}
}
