package giop

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"eternalgw/internal/cdr"
)

func TestRequest12RoundTrip(t *testing.T) {
	for _, order := range []cdr.ByteOrder{cdr.BigEndian, cdr.LittleEndian} {
		req := Request{
			ServiceContexts:  []ServiceContext{{ID: FTClientContextID, Data: []byte("c1")}},
			RequestID:        42,
			ResponseExpected: true,
			ObjectKey:        []byte("trading/GOOG"),
			Operation:        "buy",
			Args:             []byte{9, 8, 7, 6},
		}
		msg, err := EncodeRequestV(order, 2, req)
		if err != nil {
			t.Fatalf("%v: encode: %v", order, err)
		}
		if msg.Header.Minor != 2 {
			t.Fatalf("minor = %d", msg.Header.Minor)
		}
		got, err := DecodeRequest(msg)
		if err != nil {
			t.Fatalf("%v: decode: %v", order, err)
		}
		if got.RequestID != 42 || !got.ResponseExpected ||
			string(got.ObjectKey) != "trading/GOOG" || got.Operation != "buy" ||
			!bytes.Equal(got.Args, req.Args) {
			t.Fatalf("%v: got %+v", order, got)
		}
		if data, ok := ContextByID(got.ServiceContexts, FTClientContextID); !ok || string(data) != "c1" {
			t.Fatalf("%v: service context lost", order)
		}
	}
}

func TestRequest12OneWay(t *testing.T) {
	msg, err := EncodeRequestV(cdr.BigEndian, 2, Request{RequestID: 1, Operation: "fire", ObjectKey: []byte("k")})
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRequest(msg)
	if err != nil {
		t.Fatal(err)
	}
	if got.ResponseExpected {
		t.Fatal("oneway decoded as response-expected")
	}
	if len(got.Args) != 0 {
		t.Fatalf("args = %v", got.Args)
	}
}

func TestReply12RoundTrip(t *testing.T) {
	rep := Reply{
		RequestID: 7,
		Status:    ReplyNoException,
		Result:    []byte{1, 2, 3},
	}
	msg, err := EncodeReplyV(cdr.LittleEndian, 2, rep)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeReply(msg)
	if err != nil {
		t.Fatal(err)
	}
	if got.RequestID != 7 || got.Status != ReplyNoException || !bytes.Equal(got.Result, rep.Result) {
		t.Fatalf("got %+v", got)
	}
	if got.ResultOrder != cdr.LittleEndian {
		t.Fatalf("result order = %v", got.ResultOrder)
	}
}

func TestReply12EmptyBody(t *testing.T) {
	msg, err := EncodeReplyV(cdr.BigEndian, 2, Reply{RequestID: 1, Status: ReplyNoException})
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeReply(msg)
	if err != nil || len(got.Result) != 0 {
		t.Fatalf("got %+v, %v", got, err)
	}
}

func TestRequest12RejectsProfileAddressing(t *testing.T) {
	// Hand-build a 1.2 request with a ProfileAddr target.
	w := cdr.NewWriter(cdr.BigEndian)
	w.WriteULong(1) // request id
	w.WriteOctet(responseFlagsExpected)
	w.WriteOctet(0)
	w.WriteOctet(0)
	w.WriteOctet(0)
	w.WriteUShort(TargetProfileAddr)
	msg := Message{Header: Header{Major: 1, Minor: 2, Order: cdr.BigEndian, Type: MsgRequest}, Body: w.Bytes()}
	if _, err := DecodeRequest(msg); !errors.Is(err, ErrUnsupportedTarget) {
		t.Fatalf("err = %v, want ErrUnsupportedTarget", err)
	}
}

func TestEncodeRequestVRejectsUnknownMinor(t *testing.T) {
	if _, err := EncodeRequestV(cdr.BigEndian, 3, Request{}); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("err = %v, want ErrBadVersion", err)
	}
	if _, err := EncodeReplyV(cdr.BigEndian, 9, Reply{}); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("err = %v, want ErrBadVersion", err)
	}
}

func TestRequest11RoundTrip(t *testing.T) {
	// GIOP 1.1 inserts reserved[3] after response_expected; the
	// round trip must preserve every field.
	req := Request{
		RequestID:        5,
		ResponseExpected: true,
		ObjectKey:        []byte("k"),
		Operation:        "op",
		Principal:        []byte("p"),
		Args:             []byte{1, 2, 3},
	}
	m1, err := EncodeRequestV(cdr.BigEndian, 1, req)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Header.Minor != 1 {
		t.Fatalf("minor = %d", m1.Header.Minor)
	}
	// Note: with these field values the 1.1 body coincides with 1.0 —
	// the spec placed reserved[3] exactly where 1.0 emits alignment
	// padding — but the decoder must treat the octets as reserved, not
	// as padding, which a misaligning prefix would expose.
	if len(m1.Body) < 12 {
		t.Fatalf("implausible 1.1 body: %d bytes", len(m1.Body))
	}
	got, err := DecodeRequest(m1)
	if err != nil {
		t.Fatal(err)
	}
	if got.RequestID != 5 || !got.ResponseExpected || got.Operation != "op" ||
		string(got.ObjectKey) != "k" || string(got.Principal) != "p" || !bytes.Equal(got.Args, req.Args) {
		t.Fatalf("got %+v", got)
	}
}

func TestQuickRequest12RoundTrip(t *testing.T) {
	f := func(id uint32, expected bool, key, args []byte, op string, little bool) bool {
		order := cdr.BigEndian
		if little {
			order = cdr.LittleEndian
		}
		op = sanitize(op)
		msg, err := EncodeRequestV(order, 2, Request{
			RequestID:        id,
			ResponseExpected: expected,
			ObjectKey:        key,
			Operation:        op,
			Args:             args,
		})
		if err != nil {
			return false
		}
		got, err := DecodeRequest(msg)
		if err != nil {
			return false
		}
		return got.RequestID == id &&
			got.ResponseExpected == expected &&
			bytes.Equal(got.ObjectKey, key) &&
			got.Operation == op &&
			bytes.Equal(got.Args, args)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuick12DecodersNeverPanic(t *testing.T) {
	f := func(body []byte, little bool) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		order := cdr.BigEndian
		if little {
			order = cdr.LittleEndian
		}
		msg := Message{Header: Header{Major: 1, Minor: 2, Order: order, Type: MsgRequest}, Body: body}
		_, _ = DecodeRequest(msg)
		msg.Header.Type = MsgReply
		_, _ = DecodeReply(msg)
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
