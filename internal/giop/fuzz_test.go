package giop

import (
	"io"
	"testing"

	"eternalgw/internal/cdr"
)

// FuzzUnmarshal feeds arbitrary bytes through the framing and every body
// decoder: none may panic or over-read.
func FuzzUnmarshal(f *testing.F) {
	// Seed with real messages of each version and kind.
	req10, _ := EncodeRequest(cdr.BigEndian, Request{RequestID: 1, ResponseExpected: true, ObjectKey: []byte("k"), Operation: "op", Args: []byte{1, 2, 3}})
	req12, _ := EncodeRequestV(cdr.LittleEndian, 2, Request{RequestID: 2, ObjectKey: []byte("k"), Operation: "op"})
	rep, _ := EncodeReply(cdr.BigEndian, Reply{RequestID: 1, Status: ReplyNoException, Result: []byte{9}})
	f.Add(Marshal(req10))
	f.Add(Marshal(req12))
	f.Add(Marshal(rep))
	f.Add(Marshal(EncodeCancelRequest(cdr.BigEndian, CancelRequest{RequestID: 3})))
	f.Add([]byte("GIOP"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := Unmarshal(data)
		if err != nil {
			return
		}
		_, _ = DecodeRequest(msg)
		_, _ = DecodeReply(msg)
		_, _ = DecodeCancelRequest(msg)
		_, _ = DecodeLocateRequest(msg)
		_, _ = DecodeLocateReply(msg)
	})
}

// FuzzDecodeRequest targets the request body decoders directly: a
// valid frame header with an arbitrary body, across every protocol
// minor and both byte orders, so the fuzzer spends its budget inside
// decodeRequest* instead of bouncing off the framing checks. Any decode
// that succeeds must survive a re-encode/re-decode round trip with the
// identity fields intact — the property the gateway's forwarding path
// (decode, rewrite object key, re-encode) depends on.
func FuzzDecodeRequest(f *testing.F) {
	for _, minor := range []byte{0, 1, 2} {
		req, _ := EncodeRequestV(cdr.BigEndian, minor, Request{
			RequestID: 5, ResponseExpected: true, ObjectKey: []byte("group/7"),
			Operation: "transfer", Args: []byte{1, 2, 3, 4},
			ServiceContexts: []ServiceContext{{ID: 9, Data: []byte("ctx")}},
		})
		f.Add(minor, false, req.Body)
	}
	f.Add(byte(0), true, []byte{})
	f.Add(byte(2), true, []byte{0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, minor byte, little bool, body []byte) {
		order := cdr.BigEndian
		if little {
			order = cdr.LittleEndian
		}
		msg := Message{Header: Header{Major: 1, Minor: minor % 3, Order: order, Type: MsgRequest}, Body: body}
		req, err := DecodeRequest(msg)
		if err != nil {
			return
		}
		re, err := EncodeRequestV(order, msg.Header.Minor, req)
		if err != nil {
			t.Fatalf("decoded request does not re-encode: %v", err)
		}
		back, err := DecodeRequest(re)
		if err != nil {
			t.Fatalf("re-encoded request does not decode: %v", err)
		}
		if back.RequestID != req.RequestID || back.Operation != req.Operation ||
			string(back.ObjectKey) != string(req.ObjectKey) {
			t.Fatalf("round trip changed identity: %+v != %+v", back, req)
		}
	})
}

// FuzzDecodeReply is FuzzDecodeRequest for the reply decoders.
func FuzzDecodeReply(f *testing.F) {
	for _, minor := range []byte{0, 1, 2} {
		rep, _ := EncodeReplyV(cdr.BigEndian, minor, Reply{
			RequestID: 5, Status: ReplyNoException, Result: []byte{9, 9},
			ServiceContexts: []ServiceContext{{ID: 1, Data: []byte("x")}},
		})
		f.Add(minor, false, rep.Body)
	}
	f.Add(byte(0), true, []byte{})
	f.Add(byte(2), true, []byte{0, 0, 0, 0, 0, 0, 0, 1})

	f.Fuzz(func(t *testing.T, minor byte, little bool, body []byte) {
		order := cdr.BigEndian
		if little {
			order = cdr.LittleEndian
		}
		msg := Message{Header: Header{Major: 1, Minor: minor % 3, Order: order, Type: MsgReply}, Body: body}
		rep, err := DecodeReply(msg)
		if err != nil {
			return
		}
		re, err := EncodeReplyV(order, msg.Header.Minor, rep)
		if err != nil {
			t.Fatalf("decoded reply does not re-encode: %v", err)
		}
		back, err := DecodeReply(re)
		if err != nil {
			t.Fatalf("re-encoded reply does not decode: %v", err)
		}
		if back.RequestID != rep.RequestID || back.Status != rep.Status {
			t.Fatalf("round trip changed identity: %+v != %+v", back, rep)
		}
	})
}

// FuzzReassembler feeds arbitrary byte streams through the fragment
// reassembler.
func FuzzReassembler(f *testing.F) {
	big, _ := EncodeRequestV(cdr.BigEndian, 2, Request{RequestID: 7, ObjectKey: []byte("k"), Operation: "op", Args: make([]byte, 4096)})
	var fragged []byte
	{
		buf := &sliceWriter{}
		_ = WriteMessageFragmented(buf, big, 512)
		fragged = buf.b
	}
	f.Add(fragged)
	f.Add(Marshal(big))
	f.Add([]byte{'G', 'I', 'O', 'P', 1, 2, 2, 7, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		ra := NewReassembler(&sliceReader{b: data}, 1<<20)
		for i := 0; i < 64; i++ {
			if _, err := ra.Next(); err != nil {
				return
			}
		}
	})
}

type sliceWriter struct{ b []byte }

func (w *sliceWriter) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

type sliceReader struct {
	b   []byte
	pos int
}

func (r *sliceReader) Read(p []byte) (int, error) {
	if r.pos >= len(r.b) {
		return 0, io.EOF
	}
	n := copy(p, r.b[r.pos:])
	r.pos += n
	return n, nil
}
