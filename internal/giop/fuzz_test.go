package giop

import (
	"io"
	"testing"

	"eternalgw/internal/cdr"
)

// FuzzUnmarshal feeds arbitrary bytes through the framing and every body
// decoder: none may panic or over-read.
func FuzzUnmarshal(f *testing.F) {
	// Seed with real messages of each version and kind.
	req10, _ := EncodeRequest(cdr.BigEndian, Request{RequestID: 1, ResponseExpected: true, ObjectKey: []byte("k"), Operation: "op", Args: []byte{1, 2, 3}})
	req12, _ := EncodeRequestV(cdr.LittleEndian, 2, Request{RequestID: 2, ObjectKey: []byte("k"), Operation: "op"})
	rep, _ := EncodeReply(cdr.BigEndian, Reply{RequestID: 1, Status: ReplyNoException, Result: []byte{9}})
	f.Add(Marshal(req10))
	f.Add(Marshal(req12))
	f.Add(Marshal(rep))
	f.Add(Marshal(EncodeCancelRequest(cdr.BigEndian, CancelRequest{RequestID: 3})))
	f.Add([]byte("GIOP"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := Unmarshal(data)
		if err != nil {
			return
		}
		_, _ = DecodeRequest(msg)
		_, _ = DecodeReply(msg)
		_, _ = DecodeCancelRequest(msg)
		_, _ = DecodeLocateRequest(msg)
		_, _ = DecodeLocateReply(msg)
	})
}

// FuzzReassembler feeds arbitrary byte streams through the fragment
// reassembler.
func FuzzReassembler(f *testing.F) {
	big, _ := EncodeRequestV(cdr.BigEndian, 2, Request{RequestID: 7, ObjectKey: []byte("k"), Operation: "op", Args: make([]byte, 4096)})
	var fragged []byte
	{
		buf := &sliceWriter{}
		_ = WriteMessageFragmented(buf, big, 512)
		fragged = buf.b
	}
	f.Add(fragged)
	f.Add(Marshal(big))
	f.Add([]byte{'G', 'I', 'O', 'P', 1, 2, 2, 7, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, data []byte) {
		ra := NewReassembler(&sliceReader{b: data}, 1<<20)
		for i := 0; i < 64; i++ {
			if _, err := ra.Next(); err != nil {
				return
			}
		}
	})
}

type sliceWriter struct{ b []byte }

func (w *sliceWriter) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

type sliceReader struct {
	b   []byte
	pos int
}

func (r *sliceReader) Read(p []byte) (int, error) {
	if r.pos >= len(r.b) {
		return 0, io.EOF
	}
	n := copy(p, r.b[r.pos:])
	r.pos += n
	return n, nil
}
