// Reconfiguration soak: a degree-3 active group is rolling-upgraded and
// the gateway set churned while thin clients append unique markers at
// full load, run under -race by `make soak-reconfig`. The assertions are
// the online-reconfiguration contract: every marker lands in the
// replicated state exactly once and in one total order, the upgraded
// replicas catch up from a checkpoint plus a bounded log suffix (never
// from the start of history), and the republished multi-profile IORs
// carry clients across the gateway churn without a lost or duplicated
// operation.
package eternalgw_test

import (
	"encoding/binary"
	"sync"
	"testing"
	"time"

	"eternalgw/internal/domain"
	"eternalgw/internal/experiments"
	"eternalgw/internal/faultinject"
	"eternalgw/internal/ftmgmt"
	"eternalgw/internal/ior"
	"eternalgw/internal/replication"
	"eternalgw/internal/thinclient"
	"eternalgw/internal/totem"
)

func marker(client, call uint32) []byte {
	b := make([]byte, 8)
	binary.BigEndian.PutUint32(b, client)
	binary.BigEndian.PutUint32(b[4:], call)
	return b
}

func TestReconfigRollingUpgradeSoak(t *testing.T) {
	const (
		clients    = 16
		cpInterval = 8
	)
	calls := 25
	if testing.Short() {
		calls = 8
	}
	total := clients * calls

	var (
		clientMu    sync.Mutex
		liveClients []*thinclient.Client
		lastRef     ior.Ref
		haveRef     bool
	)
	d, err := domain.New(domain.Config{
		Name:  "reconfig-soak",
		Nodes: 4,
		Totem: totem.Config{
			IdleHold:        100 * time.Microsecond,
			TokenRetransmit: 10 * time.Millisecond,
			FailTimeout:     80 * time.Millisecond,
			GatherTimeout:   20 * time.Millisecond,
		},
		Replication:          replication.Config{CheckpointInterval: cpInterval},
		GatewayInvokeTimeout: 10 * time.Second,
		OnIORUpdate: func(objectKey []byte, ref ior.Ref) {
			clientMu.Lock()
			lastRef, haveRef = ref, true
			cs := append([]*thinclient.Client(nil), liveClients...)
			clientMu.Unlock()
			for _, c := range cs {
				if err := c.RefreshProfiles(ref); err != nil {
					t.Errorf("refresh profiles: %v", err)
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)

	factory := func() (replication.Application, error) { return &experiments.RegisterApp{}, nil }
	err = d.Manager().CreateReplicatedObject(benchGroup, ftmgmt.Properties{
		Style:           replication.Active,
		InitialReplicas: 3,
		MinReplicas:     3,
		ObjectKey:       []byte(benchKey),
		TypeID:          benchType,
	}, factory)
	if err != nil {
		t.Fatal(err)
	}
	gwA, err := d.AddGateway(0, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddGateway(1, ""); err != nil {
		t.Fatal(err)
	}
	ref, err := d.PublishIOR(benchType, []byte(benchKey))
	if err != nil {
		t.Fatal(err)
	}

	// Baseline transfer stats: the initial placement performs full-state
	// transfers (no checkpoint exists yet); only what the fault plan
	// causes afterwards is asserted against.
	sumStats := func() replication.Stats {
		var out replication.Stats
		for i := 0; i < d.Nodes(); i++ {
			st := d.Node(i).RM.Stats()
			out.TransfersCheckpointed += st.TransfersCheckpointed
			out.TransfersFullState += st.TransfersFullState
			out.TransferEntriesReplayed += st.TransferEntriesReplayed
			out.ViewChanges += st.ViewChanges
		}
		return out
	}
	before := sumStats()

	// The fault plan reconfigures the domain mid-storm. Thresholds are
	// operation counts, so the schedule is reproducible regardless of
	// machine speed; the operations themselves run concurrently with the
	// load on their own goroutines, which is the point of the soak.
	var reconfWG sync.WaitGroup
	reconfErr := make(chan error, 4)
	plan := faultinject.NewPlan(
		faultinject.Step{AtOp: uint64(total / 4), Name: "rolling-upgrade", Action: func() {
			reconfWG.Add(1)
			go func() {
				defer reconfWG.Done()
				if _, err := d.Manager().RollingUpgrade(benchGroup, factory); err != nil {
					reconfErr <- err
				}
			}()
		}},
		faultinject.Step{AtOp: uint64(total / 2), Name: "gateway-churn", Action: func() {
			reconfWG.Add(1)
			go func() {
				defer reconfWG.Done()
				if _, err := d.AddGateway(3, ""); err != nil {
					reconfErr <- err
					return
				}
				if err := d.RemoveGateway(gwA, 5*time.Second); err != nil {
					reconfErr <- err
				}
			}()
		}},
	)

	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c uint32) {
			defer wg.Done()
			tc, err := thinclient.Dial(ref, thinclient.Config{
				CallTimeout:  10 * time.Second,
				MaxRounds:    500,
				ShedBackoff:  500 * time.Microsecond,
				ShedFailover: 8,
			})
			if err != nil {
				errCh <- err
				return
			}
			defer func() { _ = tc.Close() }()
			clientMu.Lock()
			liveClients = append(liveClients, tc)
			if haveRef {
				cur := lastRef
				clientMu.Unlock()
				_ = tc.RefreshProfiles(cur)
			} else {
				clientMu.Unlock()
			}
			for i := 0; i < calls; i++ {
				if _, err := tc.Call("append", experiments.OctetSeqArg(marker(c, uint32(i)))); err != nil {
					errCh <- err
					return
				}
				plan.Tick()
			}
		}(uint32(c))
	}
	wg.Wait()
	reconfWG.Wait()
	close(errCh)
	close(reconfErr)
	for err := range errCh {
		t.Fatal(err)
	}
	for err := range reconfErr {
		t.Fatalf("reconfiguration failed under load: %v", err)
	}
	if !plan.Done() {
		t.Fatalf("fault plan incomplete: fired %v after %d ops", plan.Fired(), plan.Ops())
	}

	// Read the replicated register back through the surviving gateways.
	clientMu.Lock()
	finalRef := ref
	if haveRef {
		finalRef = lastRef
	}
	clientMu.Unlock()
	tc, err := thinclient.Dial(finalRef, thinclient.Config{CallTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = tc.Close() }()
	r, err := tc.Call("ops", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.ReadLongLong(); got != int64(total) {
		t.Fatalf("replicas executed %d ops, want exactly %d", got, total)
	}
	r, err = tc.Call("read", nil)
	if err != nil {
		t.Fatal(err)
	}
	value := r.ReadOctetSeq()
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if len(value) != total*8 {
		t.Fatalf("register holds %d bytes, want %d (markers lost or duplicated)", len(value), total*8)
	}
	seen := make(map[uint64]int, total)
	for off := 0; off < len(value); off += 8 {
		seen[binary.BigEndian.Uint64(value[off:])]++
	}
	for c := uint32(0); c < clients; c++ {
		for i := uint32(0); i < uint32(calls); i++ {
			if n := seen[binary.BigEndian.Uint64(marker(c, i))]; n != 1 {
				t.Fatalf("marker client=%d call=%d appended %d times, want exactly once", c, i, n)
			}
		}
	}

	// The upgraded replicas caught up from checkpoints, replaying only a
	// bounded suffix of the invocation log — not history from zero.
	delta := sumStats()
	delta.TransfersCheckpointed -= before.TransfersCheckpointed
	delta.TransferEntriesReplayed -= before.TransferEntriesReplayed
	if delta.TransfersCheckpointed < 3 {
		t.Fatalf("checkpointed transfers during upgrade = %d, want >= 3 (one per replaced replica)", delta.TransfersCheckpointed)
	}
	if delta.TransferEntriesReplayed >= uint64(total) {
		t.Fatalf("joiners replayed %d entries (load was %d): state transfer replayed history from zero", delta.TransferEntriesReplayed, total)
	}

	// Every surviving node agrees on the group's final membership view.
	v0, ok := d.Node(0).RM.View(benchGroup)
	if !ok {
		t.Fatal("no view for the soak group")
	}
	for i := 1; i < d.Nodes(); i++ {
		if err := d.Node(i).RM.WaitForView(benchGroup, v0.Number, 5*time.Second); err != nil {
			t.Fatalf("node %d never reached view %d: %v", i, v0.Number, err)
		}
	}
}
